// Parallel execution must be invisible in the results: the functional
// executor's outputs, its measured coded-stream byte counts, and the morph
// controller's chosen plans have to be bit-identical whether the thread pool
// runs serial or wide. This is the determinism contract docs/PERF.md states.
#include <gtest/gtest.h>

#include "core/morph.hpp"
#include "dataflow/executor.hpp"
#include "nn/generate.hpp"
#include "util/parallel.hpp"

namespace mocha {
namespace {

using dataflow::FunctionalResult;
using dataflow::NetworkPlan;
using nn::Index;

/// AlexNet's shape grammar in miniature: strided big-kernel head conv,
/// max pools, padded 3x3 body, FC tail. Small enough that the full
/// plan-then-execute cycle runs at every thread count in seconds.
nn::Network alexnet_style() {
  nn::Network net;
  net.name = "alexnet_style";
  net.layers.push_back(nn::conv_layer("conv1", 3, 31, 31, 16, 5, 2, 0));
  net.layers.push_back(nn::pool_layer("pool1", 16, 14, 14, 2, 2));
  net.layers.push_back(nn::conv_layer("conv2", 16, 7, 7, 32, 3, 1, 1));
  net.layers.push_back(nn::conv_layer("conv3", 32, 7, 7, 32, 3, 1, 1));
  net.layers.push_back(nn::pool_layer("pool2", 32, 7, 7, 2, 2));
  net.layers.push_back(nn::fc_layer("fc1", 32 * 3 * 3, 64));
  net.layers.push_back(nn::fc_layer("fc2", 64, 10, /*relu=*/false));
  net.validate();
  return net;
}

/// MobileNet's shape grammar in miniature: depthwise-separable blocks
/// (3x3 depthwise + 1x1 pointwise), stride-2 downsampling, average-pool
/// head into a classifier.
nn::Network mobilenet_style() {
  nn::Network net;
  net.name = "mobilenet_style";
  net.layers.push_back(nn::conv_layer("conv1", 3, 32, 32, 16, 3, 2, 1));
  net.layers.push_back(nn::depthwise_layer("dw1", 16, 16, 16, 3, 1, 1));
  net.layers.push_back(nn::conv_layer("pw1", 16, 16, 16, 32, 1, 1, 0));
  net.layers.push_back(nn::depthwise_layer("dw2", 32, 16, 16, 3, 2, 1));
  net.layers.push_back(nn::conv_layer("pw2", 32, 8, 8, 64, 1, 1, 0));
  net.layers.push_back(
      nn::pool_layer("avgpool", 64, 8, 8, 8, 8, nn::PoolOp::Average));
  net.layers.push_back(nn::fc_layer("fc", 64, 10, /*relu=*/false));
  net.validate();
  return net;
}

struct PlannedRun {
  NetworkPlan plan;
  FunctionalResult result;
};

PlannedRun plan_and_execute(const nn::Network& net,
                            const nn::ValueTensor& input,
                            const std::vector<nn::ValueTensor>& weights) {
  const auto stats = core::assumed_stats(net, {});
  const core::MorphController morph(model::default_tech(),
                                    core::MorphOptions{});
  PlannedRun run;
  run.plan = morph.plan(net, fabric::mocha_default_config(), stats);
  run.result = dataflow::run_functional(net, run.plan, input, weights);
  return run;
}

void expect_thread_equivalence(const nn::Network& net) {
  util::Rng rng(99);
  const nn::ValueTensor input =
      nn::random_tensor(net.layers.front().input_shape(), 0.3, rng);
  const auto weights = nn::random_weights(net, 0.25, rng);

  util::ThreadPool::set_global_threads(1);
  const PlannedRun serial = plan_and_execute(net, input, weights);
  util::ThreadPool::set_global_threads(8);
  const PlannedRun parallel = plan_and_execute(net, input, weights);
  util::ThreadPool::set_global_threads(1);

  // Chosen morph plans are identical, knob for knob.
  ASSERT_EQ(serial.plan.layers.size(), parallel.plan.layers.size());
  for (std::size_t i = 0; i < serial.plan.layers.size(); ++i) {
    const dataflow::LayerPlan& a = serial.plan.layers[i];
    const dataflow::LayerPlan& b = parallel.plan.layers[i];
    EXPECT_EQ(a.summary(), b.summary()) << net.name << " layer " << i;
    EXPECT_EQ(a.tile, b.tile) << net.name << " layer " << i;
    EXPECT_EQ(a.batch_tile, b.batch_tile) << net.name << " layer " << i;
    EXPECT_EQ(a.fuse_with_next, b.fuse_with_next) << net.name << " layer "
                                                  << i;
  }

  // Executor outputs are bit-identical.
  ASSERT_EQ(serial.result.outputs.size(), parallel.result.outputs.size());
  for (std::size_t i = 0; i < serial.result.outputs.size(); ++i) {
    EXPECT_TRUE(serial.result.outputs[i] == parallel.result.outputs[i])
        << net.name << " layer " << net.layers[i].name;
  }

  // Measured coded-stream byte counts are identical (the per-tile reduction
  // is summed in tile order regardless of which thread coded which tile).
  for (std::size_t i = 0; i < serial.result.streams.size(); ++i) {
    const dataflow::MeasuredStreams& a = serial.result.streams[i];
    const dataflow::MeasuredStreams& b = parallel.result.streams[i];
    EXPECT_EQ(a.ifmap_raw, b.ifmap_raw) << net.name << " layer " << i;
    EXPECT_EQ(a.ifmap_coded, b.ifmap_coded) << net.name << " layer " << i;
    EXPECT_EQ(a.kernel_raw, b.kernel_raw) << net.name << " layer " << i;
    EXPECT_EQ(a.kernel_coded, b.kernel_coded) << net.name << " layer " << i;
    EXPECT_EQ(a.ofmap_raw, b.ofmap_raw) << net.name << " layer " << i;
    EXPECT_EQ(a.ofmap_coded, b.ofmap_coded) << net.name << " layer " << i;
  }

  // Measured sparsity statistics ride the same paths; keep them honest too.
  for (std::size_t i = 0; i < serial.result.measured_stats.size(); ++i) {
    EXPECT_EQ(serial.result.measured_stats[i].ifmap_sparsity,
              parallel.result.measured_stats[i].ifmap_sparsity);
    EXPECT_EQ(serial.result.measured_stats[i].ofmap_sparsity,
              parallel.result.measured_stats[i].ofmap_sparsity);
  }
}

TEST(ParallelEquivalence, AlexNetStyleSerialVsEightThreads) {
  expect_thread_equivalence(alexnet_style());
}

TEST(ParallelEquivalence, MobileNetStyleSerialVsEightThreads) {
  expect_thread_equivalence(mobilenet_style());
}

// The reference kernels parallelize over channels; they must match
// themselves across thread counts on every layer kind at once.
TEST(ParallelEquivalence, ReferenceKernelsSerialVsEightThreads) {
  const nn::Network net = mobilenet_style();
  util::Rng rng(7);
  const nn::ValueTensor input =
      nn::random_tensor(net.layers.front().input_shape(), 0.3, rng);
  const auto weights = nn::random_weights(net, 0.25, rng);

  util::ThreadPool::set_global_threads(1);
  const auto serial = nn::run_network_ref(net, input, weights, {});
  util::ThreadPool::set_global_threads(8);
  const auto parallel = nn::run_network_ref(net, input, weights, {});
  util::ThreadPool::set_global_threads(1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i]) << net.layers[i].name;
  }
}

}  // namespace
}  // namespace mocha
