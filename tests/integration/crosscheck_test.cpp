// Functional <-> performance cross-validation.
//
// The functional executor measures *real* coded stream sizes (actual data
// through the actual codecs, tile by tile); the performance schedule charges
// *modelled* sizes (the analytical estimator on assumed sparsity). Running
// both on the SAME plan and the SAME measured sparsity closes the loop: the
// bytes the simulator bills for must match the bytes the real machine would
// move, within the estimator's documented tolerance.
#include <gtest/gtest.h>

#include "dataflow/executor.hpp"
#include "dataflow/schedule.hpp"
#include "nn/generate.hpp"

namespace mocha {
namespace {

using dataflow::LayerPlan;
using dataflow::LayerStreamStats;
using dataflow::NetworkPlan;
using nn::Index;

struct CrossCase {
  double sparsity;
  compress::CodecKind codec;
  Index th;
};

class StreamCrossCheck : public ::testing::TestWithParam<CrossCase> {};

TEST_P(StreamCrossCheck, BilledBytesMatchRealCodedStreams) {
  const auto& param = GetParam();
  const nn::Network net = nn::make_single_conv(8, 24, 24, 8, 3, 1, 1);
  const nn::LayerSpec& layer = net.layers[0];

  NetworkPlan plan;
  LayerPlan lp;
  lp.tile = {param.th, param.th, layer.in_c, layer.out_channels()};
  lp.ifmap_codec = param.codec;
  lp.kernel_codec = param.codec;
  plan.layers = {lp};

  // Real data at the requested sparsity.
  util::Rng rng(911 + static_cast<std::uint64_t>(param.th));
  const nn::ValueTensor input =
      nn::random_tensor(layer.input_shape(), param.sparsity, rng);
  const auto weights = nn::random_weights(net, param.sparsity, rng);

  // Functional pass: measured coded bytes per stream.
  const auto functional =
      dataflow::run_functional(net, plan, input, weights, {});

  // Performance pass with the *measured* sparsities.
  std::vector<LayerStreamStats> stats(1);
  stats[0].ifmap_sparsity = functional.measured_stats[0].ifmap_sparsity;
  stats[0].kernel_sparsity = functional.measured_stats[0].kernel_sparsity;
  stats[0].ofmap_sparsity = functional.measured_stats[0].ofmap_sparsity;
  const auto config = fabric::mocha_default_config();
  dataflow::BuiltSchedule built =
      dataflow::build_group_schedule(net, plan, {0, 0}, config, stats);
  const auto run = sim::Engine(built.layout.specs).run(built.graph);

  // WS full-maps plan: the ifmap is streamed exactly once, weights once.
  const std::int64_t billed_reads = run.totals.dram_read_bytes;
  const std::int64_t real_reads =
      functional.streams[0].ifmap_coded + functional.streams[0].kernel_coded;
  EXPECT_NEAR(static_cast<double>(billed_reads) /
                  static_cast<double>(real_reads),
              1.0, 0.12)
      << "billed " << billed_reads << " real " << real_reads << " ("
      << compress::codec_name(param.codec) << ", s=" << param.sparsity
      << ", th=" << param.th << ")";
}

INSTANTIATE_TEST_SUITE_P(
    CodecsAndSparsities, StreamCrossCheck,
    ::testing::Values(CrossCase{0.1, compress::CodecKind::Zrle, 24},
                      CrossCase{0.5, compress::CodecKind::Zrle, 24},
                      CrossCase{0.8, compress::CodecKind::Zrle, 24},
                      CrossCase{0.5, compress::CodecKind::Zrle, 6},
                      CrossCase{0.8, compress::CodecKind::Zrle, 6},
                      CrossCase{0.1, compress::CodecKind::Bitmask, 24},
                      CrossCase{0.5, compress::CodecKind::Bitmask, 24},
                      CrossCase{0.5, compress::CodecKind::Bitmask, 6},
                      CrossCase{0.0, compress::CodecKind::None, 24},
                      CrossCase{0.5, compress::CodecKind::None, 8}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return std::string(compress::codec_name(info.param.codec)) + "_s" +
             std::to_string(static_cast<int>(info.param.sparsity * 100)) +
             "_th" + std::to_string(info.param.th);
    });

TEST(StreamCrossCheck, OfmapStoreBytesMatchMeasured) {
  // Output path: the simulator's billed store bytes vs the real coded size
  // of the actual computed output at the measured output sparsity.
  const nn::Network net = nn::make_single_conv(6, 20, 20, 6, 3, 1, 1);
  NetworkPlan plan;
  LayerPlan lp;
  lp.tile = {20, 20, 6, 6};
  lp.ofmap_codec = compress::CodecKind::Zrle;
  plan.layers = {lp};

  util::Rng rng(4242);
  const nn::ValueTensor input =
      nn::random_tensor(net.layers[0].input_shape(), 0.3, rng);
  const auto weights = nn::random_weights(net, 0.3, rng);
  const auto functional =
      dataflow::run_functional(net, plan, input, weights, {});

  std::vector<LayerStreamStats> stats(1);
  stats[0].ofmap_sparsity = functional.measured_stats[0].ofmap_sparsity;
  const auto config = fabric::mocha_default_config();
  dataflow::BuiltSchedule built =
      dataflow::build_group_schedule(net, plan, {0, 0}, config, stats);
  const auto run = sim::Engine(built.layout.specs).run(built.graph);

  EXPECT_NEAR(static_cast<double>(run.totals.dram_write_bytes) /
                  static_cast<double>(functional.streams[0].ofmap_coded),
              1.0, 0.12);
}

TEST(StreamCrossCheck, FusedGroupHeadStreamMatches) {
  nn::Network net = nn::make_synthetic("pair", 20, 20, {6, 6}, 3, false);
  NetworkPlan plan;
  for (const nn::LayerSpec& l : net.layers) {
    LayerPlan lp;
    lp.tile = {l.out_h(), l.out_w(), l.in_c, l.out_channels()};
    plan.layers.push_back(lp);
  }
  plan.layers[0].fuse_with_next = true;
  plan.layers[0].ifmap_codec = compress::CodecKind::Zrle;
  plan.layers[1].tile.th = 5;
  plan.layers[1].tile.tw = 5;

  util::Rng rng(515);
  const nn::ValueTensor input =
      nn::random_tensor(net.layers[0].input_shape(), 0.5, rng);
  const auto weights = nn::random_weights(net, 0.2, rng);
  const auto functional =
      dataflow::run_functional(net, plan, input, weights, {});

  std::vector<LayerStreamStats> stats(2);
  stats[0].ifmap_sparsity = functional.measured_stats[0].ifmap_sparsity;
  const auto config = fabric::mocha_default_config();
  dataflow::BuiltSchedule built =
      dataflow::build_group_schedule(net, plan, {0, 1}, config, stats);
  const auto run = sim::Engine(built.layout.specs).run(built.graph);

  // Billed head-ifmap reads = total DRAM reads minus the (uncoded) weights.
  std::int64_t w_bytes = 0;
  for (const auto& l : net.layers) w_bytes += l.weight_bytes();
  const std::int64_t billed_ifmap = run.totals.dram_read_bytes - w_bytes;
  EXPECT_NEAR(static_cast<double>(billed_ifmap) /
                  static_cast<double>(functional.streams[0].ifmap_coded),
              1.0, 0.12);
}

}  // namespace
}  // namespace mocha
