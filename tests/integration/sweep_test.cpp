// Cross-layer invariant sweep: build and simulate every conv/fc layer of
// the benchmark networks under a range of plan shapes, asserting the
// invariants that must hold for ANY (layer, plan) pair:
//   * the engine's measured peak never exceeds the builder's bound,
//   * scratchpad allocation balances to zero,
//   * dense MAC accounting is conserved (no codec => layer.macs() exactly),
//   * DRAM reads are at least one full pass of each operand stream,
//   * the analytical cost model's DRAM prediction tracks the simulation.
#include <gtest/gtest.h>

#include "dataflow/cost.hpp"
#include "dataflow/schedule.hpp"
#include "dataflow/tiling.hpp"

namespace mocha {
namespace {

using dataflow::LayerPlan;
using dataflow::LayerStreamStats;
using dataflow::LoopOrder;
using dataflow::NetworkPlan;
using nn::Index;

struct SweepCase {
  int net_id;           // 0 = alexnet, 1 = nin
  std::size_t layer;    // layer index within the network
  int shape;            // plan-shape variant
};

nn::Network sweep_network(int net_id) {
  return net_id == 0 ? nn::make_alexnet() : nn::make_nin();
}

LayerPlan shaped_plan(const nn::LayerSpec& layer, int shape) {
  LayerPlan plan;
  const Index oh = layer.out_h();
  const Index ow = layer.out_w();
  switch (shape) {
    case 0:  // full tile, weight-stationary
      plan.tile = {oh, ow, layer.in_c, layer.out_channels()};
      break;
    case 1:  // quarter tiles, half maps, WS
      plan.tile = {std::max<Index>(1, oh / 2), std::max<Index>(1, ow / 2),
                   layer.in_c, std::max<Index>(1, layer.out_channels() / 2)};
      break;
    case 2:  // small tiles, input-stationary with channel passes, 2x2 groups
      plan.tile = {std::max<Index>(1, oh / 4), std::max<Index>(1, ow / 4),
                   std::max<Index>(1, layer.in_c / 4),
                   std::max<Index>(1, layer.out_channels() / 4)};
      plan.order = LoopOrder::InputStationary;
      plan.inter_groups = 2;
      plan.intra_groups = 2;
      break;
    case 3:  // compressed streams, ragged tiles
      plan.tile = {std::max<Index>(1, oh / 3), std::max<Index>(1, ow / 3),
                   layer.in_c, std::max<Index>(1, layer.out_channels() / 3)};
      plan.ifmap_codec = compress::CodecKind::Zrle;
      plan.kernel_codec = compress::CodecKind::Bitmask;
      plan.ofmap_codec = compress::CodecKind::Zrle;
      plan.intra_groups = 4;
      break;
    default:
      MOCHA_UNREACHABLE("bad shape");
  }
  return plan;
}

class LayerPlanSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LayerPlanSweep, InvariantsHold) {
  const auto& param = GetParam();
  const nn::Network net = sweep_network(param.net_id);
  const nn::LayerSpec& layer = net.layers[param.layer];
  const auto config = fabric::mocha_default_config();

  NetworkPlan plan;
  for (const nn::LayerSpec& l : net.layers) {
    LayerPlan lp;
    lp.tile = {l.out_h(), l.out_w(), l.in_c, l.out_channels()};
    plan.layers.push_back(lp);
  }
  plan.layers[param.layer] = shaped_plan(layer, param.shape);

  const std::vector<LayerStreamStats> stats(net.layers.size(),
                                            {0.5, 0.25, 0.5});
  const NetworkPlan::Group group{param.layer, param.layer};
  dataflow::BuiltSchedule built =
      dataflow::build_group_schedule(net, plan, group, config, stats);
  const sim::Engine engine(built.layout.specs);
  const sim::RunResult run = engine.run(built.graph);

  // Peak within the builder's bound.
  EXPECT_LE(run.peak_sram_bytes, built.footprint_bytes);

  // Allocation balance.
  std::int64_t balance = 0;
  for (const sim::Task& t : built.graph.tasks()) {
    balance += t.sram_alloc_bytes - t.sram_free_bytes;
  }
  EXPECT_EQ(balance, 0);

  // Dense MAC conservation (zero-skip active only when the ifmap stream
  // is coded; its floor bounds the reduction).
  const auto& lp = plan.layers[param.layer];
  if (lp.ifmap_codec == compress::CodecKind::None) {
    EXPECT_EQ(run.totals.macs, layer.macs());
  } else {
    // Per-chunk integer truncation loses at most one MAC per chunk.
    EXPECT_GE(run.totals.macs,
              static_cast<std::int64_t>(static_cast<double>(layer.macs()) *
                                        config.zero_skip_floor * 0.999));
    EXPECT_LE(run.totals.macs, layer.macs());
  }

  // DRAM reads cover at least one pass of each operand stream.
  std::int64_t min_reads = dataflow::coded_stream_bytes(
      config, lp.ifmap_codec,
      (layer.kind == nn::LayerKind::Pool ? layer.in_c : layer.in_c) *
          layer.in_h * layer.in_w,
      stats[param.layer].ifmap_sparsity);
  if (layer.has_weights()) {
    min_reads += dataflow::coded_stream_bytes(config, lp.kernel_codec,
                                              layer.weight_elems(),
                                              stats[param.layer].kernel_sparsity);
  }
  // Per-tile coding overheads can undercut the whole-tensor estimate by a
  // few percent; allow that slack, not more.
  EXPECT_GE(run.totals.dram_read_bytes,
            static_cast<std::int64_t>(0.9 * static_cast<double>(min_reads)));

  // Cost model tracks the simulated DRAM traffic.
  const auto est = dataflow::estimate_group_cost(net, plan, group, config,
                                                 stats, model::default_tech());
  const auto sim_bytes = static_cast<double>(run.totals.dram_read_bytes +
                                             run.totals.dram_write_bytes);
  EXPECT_NEAR(static_cast<double>(est.dram_bytes) / sim_bytes, 1.0, 0.15)
      << "est " << est.dram_bytes << " sim " << sim_bytes;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (int net_id : {0, 1}) {
    const nn::Network net = sweep_network(net_id);
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      // Pool layers only support the WS-shaped variants.
      const int max_shape = net.layers[l].kind == nn::LayerKind::Pool ? 1 : 3;
      for (int shape = 0; shape <= max_shape; ++shape) {
        cases.push_back({net_id, l, shape});
      }
    }
  }
  return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const nn::Network net = sweep_network(info.param.net_id);
  return net.name + "_" + net.layers[info.param.layer].name + "_s" +
         std::to_string(info.param.shape);
}

INSTANTIATE_TEST_SUITE_P(BenchmarkLayers, LayerPlanSweep,
                         ::testing::ValuesIn(sweep_cases()), sweep_name);

}  // namespace
}  // namespace mocha
