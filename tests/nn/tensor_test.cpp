#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace mocha::nn {
namespace {

TEST(Tensor, ZeroInitialized) {
  ValueTensor t({1, 2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  for (Index i = 0; i < t.size(); ++i) EXPECT_EQ(t.flat(i), 0);
}

TEST(Tensor, NchwLayout) {
  ValueTensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 77;
  // Row-major NCHW: offset = ((n*C + c)*H + h)*W + w.
  EXPECT_EQ(t.flat(((1 * 3 + 2) * 4 + 3) * 5 + 4), 77);
}

TEST(Tensor, AccessorsAgree) {
  ValueTensor t({1, 1, 2, 2});
  t(0, 0, 1, 0) = 5;
  EXPECT_EQ(t.at(0, 0, 1, 0), 5);
}

TEST(Tensor, OutOfRangeAccessThrows) {
  ValueTensor t({1, 2, 3, 4});
  EXPECT_THROW(t.at(0, 0, 0, 4), util::CheckFailure);
  EXPECT_THROW(t.at(0, 2, 0, 0), util::CheckFailure);
  EXPECT_THROW(t.at(-1, 0, 0, 0), util::CheckFailure);
  EXPECT_THROW(t.flat(24), util::CheckFailure);
  EXPECT_THROW(t.flat(-1), util::CheckFailure);
}

TEST(Tensor, ConstructFromData) {
  std::vector<Value> data = {1, 2, 3, 4, 5, 6};
  ValueTensor t({1, 1, 2, 3}, data);
  EXPECT_EQ(t.at(0, 0, 1, 2), 6);
}

TEST(Tensor, ConstructFromWrongSizeThrows) {
  std::vector<Value> data = {1, 2, 3};
  EXPECT_THROW(ValueTensor({1, 1, 2, 3}, data), util::CheckFailure);
}

TEST(Tensor, SparsityCountsZeros) {
  ValueTensor t({1, 1, 1, 4}, {0, 5, 0, 0});
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.75);
  t.fill(1);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.0);
}

TEST(Tensor, EqualityIsElementwise) {
  ValueTensor a({1, 1, 1, 2}, {1, 2});
  ValueTensor b({1, 1, 1, 2}, {1, 2});
  ValueTensor c({1, 1, 1, 2}, {1, 3});
  ValueTensor d({1, 1, 2, 1}, {1, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);  // same data, different shape
}

TEST(Tensor, ShapeElems) {
  Shape4 s{2, 3, 5, 7};
  EXPECT_EQ(s.elems(), 210);
}

TEST(Tensor, EmptyDefaultTensor) {
  ValueTensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

}  // namespace
}  // namespace mocha::nn
