// Depthwise convolution: layer semantics, reference kernel, MobileNet-v1.
#include <gtest/gtest.h>

#include "nn/generate.hpp"
#include "nn/reference.hpp"

namespace mocha::nn {
namespace {

Quant identity_quant() {
  Quant q;
  q.frac_shift = 0;
  return q;
}

TEST(Depthwise, LayerGeometry) {
  const LayerSpec dw = depthwise_layer("dw", 32, 56, 56, 3, 1, 1);
  EXPECT_EQ(dw.out_channels(), 32);
  EXPECT_EQ(dw.out_h(), 56);
  EXPECT_EQ(dw.weight_shape(), (Shape4{32, 1, 3, 3}));
  // Depthwise MACs: C * OH * OW * K^2 — an in_c-th of a full conv.
  EXPECT_EQ(dw.macs(), 32LL * 56 * 56 * 9);
  EXPECT_TRUE(dw.has_weights());
}

TEST(Depthwise, StridedGeometry) {
  const LayerSpec dw = depthwise_layer("dw", 64, 56, 56, 3, 2, 1);
  EXPECT_EQ(dw.out_h(), 28);
  EXPECT_EQ(dw.out_w(), 28);
}

TEST(Depthwise, HandComputedChannelIndependence) {
  // Two channels, each with its own 1x1 "filter": channels never mix.
  LayerSpec dw = depthwise_layer("dw", 2, 2, 2, 1, 1, 0, /*relu=*/false);
  ValueTensor in({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  ValueTensor w({2, 1, 1, 1}, {2, 3});
  const ValueTensor out = depthwise_ref(in, w, dw, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 2);
  EXPECT_EQ(out.at(0, 0, 1, 1), 8);
  EXPECT_EQ(out.at(0, 1, 0, 0), 30);
  EXPECT_EQ(out.at(0, 1, 1, 1), 120);
}

TEST(Depthwise, MatchesGroupedFullConv) {
  // A depthwise conv equals a full conv whose weight tensor is diagonal in
  // channels (w[m][c] == 0 for m != c).
  const Index C = 4, H = 8;
  const LayerSpec dw = depthwise_layer("dw", C, H, H, 3, 1, 1, false);
  const LayerSpec full = conv_layer("full", C, H, H, C, 3, 1, 1, false);
  util::Rng rng(33);
  const ValueTensor in = random_tensor({1, C, H, H}, 0.2, rng);
  const ValueTensor dw_w = random_tensor(dw.weight_shape(), 0.2, rng, -8, 8);
  ValueTensor full_w(full.weight_shape());
  for (Index c = 0; c < C; ++c) {
    for (Index ky = 0; ky < 3; ++ky) {
      for (Index kx = 0; kx < 3; ++kx) {
        full_w.at(c, c, ky, kx) = dw_w.at(c, 0, ky, kx);
      }
    }
  }
  const Quant q;
  EXPECT_TRUE(depthwise_ref(in, dw_w, dw, q) ==
              conv2d_ref(in, full_w, full, q));
}

TEST(Depthwise, MobilenetShape) {
  const Network net = make_mobilenet_v1();
  EXPECT_NO_THROW(net.validate());
  // 1 conv + 13 (dw+pw) blocks + gap + fc = 1 + 26 + 2 = 29 layers.
  EXPECT_EQ(net.layers.size(), 29u);
  // Published: ~569M MACs for MobileNet-v1 1.0/224.
  std::int64_t conv_macs = 0;
  for (const LayerSpec& layer : net.layers) {
    if (layer.kind != LayerKind::Pool) conv_macs += layer.macs();
  }
  EXPECT_NEAR(static_cast<double>(conv_macs), 569e6, 15e6);
  // Published: ~4.2M weights.
  EXPECT_NEAR(static_cast<double>(net.total_weight_bytes()) / 2.0, 4.2e6,
              0.2e6);
}

TEST(Depthwise, MobilenetDepthwiseShareIsSmall) {
  // The hallmark: depthwise layers are ~3% of MACs but ~30 of 64 the
  // bandwidth problem — here just check the MAC share is under 10%.
  const Network net = make_mobilenet_v1();
  std::int64_t dw_macs = 0;
  std::int64_t all_macs = 0;
  for (const LayerSpec& layer : net.layers) {
    if (layer.kind == LayerKind::Pool) continue;
    all_macs += layer.macs();
    if (layer.kind == LayerKind::DepthwiseConv) dw_macs += layer.macs();
  }
  EXPECT_LT(static_cast<double>(dw_macs) / static_cast<double>(all_macs),
            0.10);
}

}  // namespace
}  // namespace mocha::nn
