#include "nn/network.hpp"

#include <gtest/gtest.h>

namespace mocha::nn {
namespace {

TEST(Network, AlexNetShape) {
  const Network net = make_alexnet();
  EXPECT_EQ(net.layers.size(), 11u);
  // Single-tower (ungrouped) AlexNet: ~1.07G conv MACs + ~58.6M FC MACs.
  // (The original paper's two-GPU version splits conv2/4/5 into groups,
  // halving those layers' MACs to the often-quoted ~724M total.)
  const std::int64_t conv_fc_macs = [&] {
    std::int64_t total = 0;
    for (const LayerSpec& layer : net.layers) {
      if (layer.kind != LayerKind::Pool) total += layer.macs();
    }
    return total;
  }();
  EXPECT_NEAR(static_cast<double>(conv_fc_macs), 1135e6, 10e6);
  // Final classifier emits 1000 classes.
  EXPECT_EQ(net.layers.back().out_c, 1000);
}

TEST(Network, Vgg16Shape) {
  const Network net = make_vgg16();
  // 13 conv + 5 pool + 3 fc.
  EXPECT_EQ(net.layers.size(), 21u);
  EXPECT_EQ(net.conv_layer_indices().size(), 13u);
  // Published: ~15.3G conv MACs.
  std::int64_t conv_macs = 0;
  for (std::size_t i : net.conv_layer_indices()) {
    conv_macs += net.layers[i].macs();
  }
  EXPECT_NEAR(static_cast<double>(conv_macs), 15.3e9, 0.2e9);
  // Published: ~138M parameters.
  EXPECT_NEAR(static_cast<double>(net.total_weight_bytes()) / 2.0, 138e6,
              2e6);
}

TEST(Network, LeNetShape) {
  const Network net = make_lenet5();
  EXPECT_EQ(net.layers.back().out_c, 10);
  EXPECT_NO_THROW(net.validate());
}

TEST(Network, NinShape) {
  const Network net = make_nin();
  EXPECT_NO_THROW(net.validate());
  // No FC layers; final class scores come from global average pooling.
  for (const LayerSpec& layer : net.layers) {
    EXPECT_NE(layer.kind, LayerKind::FullyConnected) << layer.name;
  }
  EXPECT_EQ(net.layers.back().out_h(), 1);
  EXPECT_EQ(net.layers.back().out_channels(), 1000);
  // Published: ~1.1G MACs for NiN-ImageNet.
  EXPECT_NEAR(static_cast<double>(net.total_macs()), 1.1e9, 0.15e9);
}

TEST(Network, ValidateCatchesShapeMismatch) {
  Network net = make_lenet5();
  net.layers[0].out_c = 7;  // breaks chaining into s2
  EXPECT_THROW(net.validate(), util::CheckFailure);
}

TEST(Network, ValidateCatchesFcFanInMismatch) {
  Network net = make_alexnet();
  net.layers[8].in_c = 1234;  // fc6 fan-in no longer matches pool5 output
  EXPECT_THROW(net.validate(), util::CheckFailure);
}

TEST(Network, EmptyNetworkInvalid) {
  Network net;
  net.name = "empty";
  EXPECT_THROW(net.validate(), util::CheckFailure);
}

TEST(Network, SyntheticBuilderChainsShapes) {
  const Network net = make_synthetic("syn", 32, 32, {8, 16, 32}, 3, true);
  EXPECT_NO_THROW(net.validate());
  EXPECT_EQ(net.conv_layer_indices().size(), 3u);
}

TEST(Network, SyntheticWithoutPooling) {
  const Network net = make_synthetic("syn", 16, 16, {4, 4}, 3, false);
  EXPECT_EQ(net.layers.size(), 2u);
  EXPECT_EQ(net.layers[1].out_h(), 16);
}

TEST(Network, SingleConvFactory) {
  const Network net = make_single_conv(3, 16, 16, 8, 3, 1, 1);
  EXPECT_EQ(net.layers.size(), 1u);
  EXPECT_EQ(net.layers[0].out_h(), 16);
}

TEST(Network, TotalMacsSumsLayers) {
  const Network net = make_lenet5();
  std::int64_t expect = 0;
  for (const LayerSpec& layer : net.layers) expect += layer.macs();
  EXPECT_EQ(net.total_macs(), expect);
}

TEST(Network, BenchmarkNetworksValidate) {
  for (const Network& net : benchmark_networks()) {
    EXPECT_NO_THROW(net.validate()) << net.name;
  }
}

}  // namespace
}  // namespace mocha::nn
