#include "nn/reference.hpp"

#include <gtest/gtest.h>

#include "nn/generate.hpp"

namespace mocha::nn {
namespace {

/// Quant with no rescaling so tiny hand-computed cases stay literal.
Quant identity_quant() {
  Quant q;
  q.frac_shift = 0;
  return q;
}

TEST(ConvRef, HandComputed1x1Kernel) {
  const LayerSpec layer = conv_layer("c", 1, 2, 2, 1, 1, 1, 0, /*relu=*/false);
  ValueTensor in({1, 1, 2, 2}, {1, 2, 3, 4});
  ValueTensor w({1, 1, 1, 1}, {3});
  const ValueTensor out = conv2d_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 3);
  EXPECT_EQ(out.at(0, 0, 0, 1), 6);
  EXPECT_EQ(out.at(0, 0, 1, 0), 9);
  EXPECT_EQ(out.at(0, 0, 1, 1), 12);
}

TEST(ConvRef, HandComputed3x3SumKernel) {
  // All-ones 3x3 kernel on all-ones input with pad=1: each output counts
  // the valid neighbours (4 at corners, 6 at edges, 9 inside).
  const LayerSpec layer = conv_layer("c", 1, 3, 3, 1, 3, 1, 1, /*relu=*/false);
  ValueTensor in({1, 1, 3, 3});
  in.fill(1);
  ValueTensor w({1, 1, 3, 3});
  w.fill(1);
  const ValueTensor out = conv2d_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 4);
  EXPECT_EQ(out.at(0, 0, 0, 1), 6);
  EXPECT_EQ(out.at(0, 0, 1, 1), 9);
  EXPECT_EQ(out.at(0, 0, 2, 2), 4);
}

TEST(ConvRef, MultiChannelAccumulation) {
  const LayerSpec layer = conv_layer("c", 2, 1, 1, 1, 1, 1, 0, /*relu=*/false);
  ValueTensor in({1, 2, 1, 1}, {5, 7});
  ValueTensor w({1, 2, 1, 1}, {2, 3});
  const ValueTensor out = conv2d_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 5 * 2 + 7 * 3);
}

TEST(ConvRef, ReluClampsNegative) {
  const LayerSpec layer = conv_layer("c", 1, 1, 1, 1, 1, 1, 0, /*relu=*/true);
  ValueTensor in({1, 1, 1, 1}, {5});
  ValueTensor w({1, 1, 1, 1}, {-2});
  const ValueTensor out = conv2d_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 0);
}

TEST(ConvRef, StrideSkipsPositions) {
  const LayerSpec layer = conv_layer("c", 1, 4, 4, 1, 2, 2, 0, /*relu=*/false);
  ValueTensor in({1, 1, 4, 4});
  for (Index i = 0; i < 16; ++i) in.flat(i) = static_cast<Value>(i);
  ValueTensor w({1, 1, 2, 2});
  w.fill(1);
  const ValueTensor out = conv2d_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.shape(), (Shape4{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 0 + 1 + 4 + 5);
  EXPECT_EQ(out.at(0, 0, 1, 1), 10 + 11 + 14 + 15);
}

TEST(QuantBehavior, FracShiftScalesDown) {
  Quant q;
  q.frac_shift = 8;
  EXPECT_EQ(q.requantize(512, false), 2);
  EXPECT_EQ(q.requantize(-512, false), -2);
  EXPECT_EQ(q.requantize(-512, true), 0);
}

TEST(QuantBehavior, Saturates) {
  Quant q;
  q.frac_shift = 0;
  EXPECT_EQ(q.requantize(1'000'000, false), 32767);
  EXPECT_EQ(q.requantize(-1'000'000, false), -32768);
}

TEST(PoolRef, MaxPool) {
  const LayerSpec layer = pool_layer("p", 1, 4, 4, 2, 2);
  ValueTensor in({1, 1, 4, 4});
  for (Index i = 0; i < 16; ++i) in.flat(i) = static_cast<Value>(i);
  const ValueTensor out = pool_ref(in, layer);
  EXPECT_EQ(out.at(0, 0, 0, 0), 5);
  EXPECT_EQ(out.at(0, 0, 1, 1), 15);
}

TEST(PoolRef, MaxPoolHandlesNegatives) {
  const LayerSpec layer = pool_layer("p", 1, 2, 2, 2, 2);
  ValueTensor in({1, 1, 2, 2}, {-5, -3, -9, -7});
  const ValueTensor out = pool_ref(in, layer);
  EXPECT_EQ(out.at(0, 0, 0, 0), -3);
}

TEST(PoolRef, AveragePoolTruncatesTowardZero) {
  const LayerSpec layer = pool_layer("p", 1, 2, 2, 2, 2, PoolOp::Average);
  ValueTensor in({1, 1, 2, 2}, {1, 2, 3, 5});
  const ValueTensor out = pool_ref(in, layer);
  EXPECT_EQ(out.at(0, 0, 0, 0), 2);  // 11/4 truncated
}

TEST(PoolRef, OverlappingWindows) {
  // AlexNet-style 3x3 stride-2 pooling.
  const LayerSpec layer = pool_layer("p", 1, 5, 5, 3, 2);
  ValueTensor in({1, 1, 5, 5});
  in.at(0, 0, 2, 2) = 100;  // centre belongs to all four windows
  const ValueTensor out = pool_ref(in, layer);
  for (Index y = 0; y < 2; ++y) {
    for (Index x = 0; x < 2; ++x) EXPECT_EQ(out.at(0, 0, y, x), 100);
  }
}

TEST(FcRef, DotProduct) {
  const LayerSpec layer = fc_layer("f", 3, 2, /*relu=*/false);
  ValueTensor in({1, 3, 1, 1}, {1, 2, 3});
  ValueTensor w({2, 3, 1, 1}, {1, 1, 1, 1, 2, 3});
  const ValueTensor out = fc_ref(in, w, layer, identity_quant());
  EXPECT_EQ(out.at(0, 0, 0, 0), 6);
  EXPECT_EQ(out.at(0, 1, 0, 0), 1 + 4 + 9);
}

TEST(NetworkRef, RunsLeNetEndToEnd) {
  const Network net = make_lenet5();
  util::Rng rng(1);
  const ValueTensor input =
      random_tensor(net.layers.front().input_shape(), 0.1, rng);
  const auto weights = random_weights(net, 0.2, rng);
  const auto outputs = run_network_ref(net, input, weights, Quant{});
  ASSERT_EQ(outputs.size(), net.layers.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].shape(), net.layers[i].output_shape());
  }
}

TEST(NetworkRef, FlattensIntoFc) {
  // conv output (c,h,w) feeding FC must flatten, not crash.
  Network net;
  net.name = "mini";
  net.layers = {conv_layer("c", 1, 4, 4, 2, 3, 1, 0),
                fc_layer("f", 2 * 2 * 2, 3, false)};
  net.validate();
  util::Rng rng(2);
  const ValueTensor input = random_tensor({1, 1, 4, 4}, 0.0, rng);
  const auto weights = random_weights(net, 0.0, rng);
  EXPECT_NO_THROW(run_network_ref(net, input, weights, Quant{}));
}

TEST(NetworkRef, RejectsWrongWeightCount) {
  const Network net = make_lenet5();
  util::Rng rng(3);
  const ValueTensor input =
      random_tensor(net.layers.front().input_shape(), 0.1, rng);
  std::vector<ValueTensor> weights;  // empty
  EXPECT_THROW(run_network_ref(net, input, weights, Quant{}),
               util::CheckFailure);
}

}  // namespace
}  // namespace mocha::nn
