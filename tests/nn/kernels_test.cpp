// Packed-kernel equivalence: the interior/border-split, register-blocked,
// zero-skipping microkernels (nn/kernels.hpp) must be *bit-identical* to a
// naive loop nest over every geometry — integer arithmetic is exact, so any
// mismatch is a real indexing or skipping bug, not rounding. The oracle
// below is the pre-packing reference implementation, kept serial on
// purpose; the packed side runs with a 4-thread pool so the map-sharding
// path is exercised (and raced under the tsan preset).
#include "nn/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "dataflow/executor.hpp"
#include "nn/generate.hpp"
#include "nn/reference.hpp"
#include "util/cpuid.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mocha::nn {
namespace {

/// Sets the pool width for the test body and restores serial afterwards.
class WithThreads {
 public:
  explicit WithThreads(int n) { util::ThreadPool::set_global_threads(n); }
  ~WithThreads() { util::ThreadPool::set_global_threads(1); }
};

/// Forces the kernel dispatch to one ISA and restores the default after.
/// The oracle sweeps below run once per supported ISA: the oracles are
/// naive loop nests that never touch the dispatch, so each pass checks one
/// vectorized variant (and forced-scalar) for bit-identical output.
class WithIsa {
 public:
  explicit WithIsa(util::KernelIsa isa) { util::force_isa(isa); }
  ~WithIsa() { util::force_isa(util::best_supported_isa()); }
};

ValueTensor oracle_conv(const ValueTensor& input, const ValueTensor& weights,
                        const LayerSpec& layer, const Quant& quant) {
  ValueTensor out(layer.output_shape());
  for (Index m = 0; m < layer.out_c; ++m) {
    for (Index y = 0; y < layer.out_h(); ++y) {
      for (Index x = 0; x < layer.out_w(); ++x) {
        Accum acc = 0;
        for (Index c = 0; c < layer.in_c; ++c) {
          for (Index ky = 0; ky < layer.kernel; ++ky) {
            const Index iy = y * layer.stride + ky - layer.pad;
            if (iy < 0 || iy >= layer.in_h) continue;
            for (Index kx = 0; kx < layer.kernel; ++kx) {
              const Index ix = x * layer.stride + kx - layer.pad;
              if (ix < 0 || ix >= layer.in_w) continue;
              acc += static_cast<Accum>(input.at_unchecked(0, c, iy, ix)) *
                     static_cast<Accum>(weights.at_unchecked(m, c, ky, kx));
            }
          }
        }
        out.at_unchecked(0, m, y, x) = quant.requantize(acc, layer.relu);
      }
    }
  }
  return out;
}

ValueTensor oracle_depthwise(const ValueTensor& input,
                             const ValueTensor& weights,
                             const LayerSpec& layer, const Quant& quant) {
  ValueTensor out(layer.output_shape());
  for (Index c = 0; c < layer.in_c; ++c) {
    for (Index y = 0; y < layer.out_h(); ++y) {
      for (Index x = 0; x < layer.out_w(); ++x) {
        Accum acc = 0;
        for (Index ky = 0; ky < layer.kernel; ++ky) {
          const Index iy = y * layer.stride + ky - layer.pad;
          if (iy < 0 || iy >= layer.in_h) continue;
          for (Index kx = 0; kx < layer.kernel; ++kx) {
            const Index ix = x * layer.stride + kx - layer.pad;
            if (ix < 0 || ix >= layer.in_w) continue;
            acc += static_cast<Accum>(input.at_unchecked(0, c, iy, ix)) *
                   static_cast<Accum>(weights.at_unchecked(c, 0, ky, kx));
          }
        }
        out.at_unchecked(0, c, y, x) = quant.requantize(acc, layer.relu);
      }
    }
  }
  return out;
}

ValueTensor oracle_pool(const ValueTensor& input, const LayerSpec& layer) {
  ValueTensor out(layer.output_shape());
  const Index window = layer.kernel * layer.kernel;
  for (Index c = 0; c < layer.in_c; ++c) {
    for (Index y = 0; y < layer.out_h(); ++y) {
      for (Index x = 0; x < layer.out_w(); ++x) {
        if (layer.pool_op == PoolOp::Max) {
          Value best = std::numeric_limits<Value>::min();
          for (Index ky = 0; ky < layer.kernel; ++ky) {
            for (Index kx = 0; kx < layer.kernel; ++kx) {
              best = std::max(
                  best, input.at_unchecked(0, c, y * layer.stride + ky,
                                           x * layer.stride + kx));
            }
          }
          out.at_unchecked(0, c, y, x) = best;
        } else {
          Accum sum = 0;
          for (Index ky = 0; ky < layer.kernel; ++ky) {
            for (Index kx = 0; kx < layer.kernel; ++kx) {
              sum += input.at_unchecked(0, c, y * layer.stride + ky,
                                        x * layer.stride + kx);
            }
          }
          out.at_unchecked(0, c, y, x) = static_cast<Value>(sum / window);
        }
      }
    }
  }
  return out;
}

ValueTensor oracle_fc(const ValueTensor& input, const ValueTensor& weights,
                      const LayerSpec& layer, const Quant& quant) {
  ValueTensor out(layer.output_shape());
  const Value* flat = input.data();
  for (Index m = 0; m < layer.out_c; ++m) {
    Accum acc = 0;
    for (Index i = 0; i < layer.ifmap_elems(); ++i) {
      acc += static_cast<Accum>(flat[i]) *
             static_cast<Accum>(weights.at_unchecked(m, i, 0, 0));
    }
    out.at_unchecked(0, m, 0, 0) = quant.requantize(acc, layer.relu);
  }
  return out;
}

void expect_identical(const ValueTensor& got, const ValueTensor& want,
                      const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (Index i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << what << " at flat index " << i;
  }
}

TEST(KernelsVsOracle, ConvSweepsGeometryAndSparsityPerIsa) {
  WithThreads threads(4);
  const Quant quant;
  for (util::KernelIsa isa : util::supported_isas()) {
    WithIsa forced(isa);
    util::Rng rng(101);  // same data per ISA: outputs must agree bit-exactly
    for (Index kernel : {1, 3, 5, 7}) {
      for (Index stride : {1, 2}) {
        for (Index pad : {0, 1, 2}) {
          for (double sparsity : {0.0, 0.5, 0.9}) {
            LayerSpec layer = conv_layer("conv", 5, 13, 11, 9, kernel, stride,
                                         pad, /*relu=*/true);
            if (layer.out_h() < 1 || layer.out_w() < 1) continue;
            const ValueTensor input =
                random_tensor(layer.input_shape(), sparsity, rng);
            const ValueTensor weights =
                random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
            const std::string what =
                std::string("isa=") + util::isa_name(isa) + " conv k=" +
                std::to_string(kernel) + " s=" + std::to_string(stride) +
                " p=" + std::to_string(pad) + " sparsity=" +
                std::to_string(sparsity);
            expect_identical(conv2d_ref(input, weights, layer, quant),
                             oracle_conv(input, weights, layer, quant), what);
          }
        }
      }
    }
  }
}

TEST(KernelsVsOracle, DepthwiseSweepPerIsa) {
  WithThreads threads(4);
  const Quant quant;
  for (util::KernelIsa isa : util::supported_isas()) {
    WithIsa forced(isa);
    util::Rng rng(102);
    for (Index kernel : {3, 5}) {
      for (Index stride : {1, 2}) {
        for (double sparsity : {0.0, 0.9}) {
          const LayerSpec layer = depthwise_layer("dw", 7, 12, 14, kernel,
                                                  stride, kernel / 2);
          const ValueTensor input =
              random_tensor(layer.input_shape(), sparsity, rng);
          const ValueTensor weights =
              random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
          expect_identical(depthwise_ref(input, weights, layer, quant),
                           oracle_depthwise(input, weights, layer, quant),
                           std::string("isa=") + util::isa_name(isa) +
                               " depthwise k=" + std::to_string(kernel));
        }
      }
    }
  }
}

TEST(KernelsVsOracle, PoolMaxAndAverage) {
  WithThreads threads(4);
  util::Rng rng(103);
  for (PoolOp op : {PoolOp::Max, PoolOp::Average}) {
    for (double sparsity : {0.0, 0.5}) {
      const LayerSpec layer = pool_layer("pool", 6, 12, 12, 2, 2, op);
      const ValueTensor input =
          random_tensor(layer.input_shape(), sparsity, rng);
      expect_identical(pool_ref(input, layer), oracle_pool(input, layer),
                       op == PoolOp::Max ? "max pool" : "avg pool");
    }
  }
}

TEST(KernelsVsOracle, FullyConnectedPerIsa) {
  WithThreads threads(4);
  const Quant quant;
  for (util::KernelIsa isa : util::supported_isas()) {
    WithIsa forced(isa);
    util::Rng rng(104);
    // The sparsity points straddle the dense/sparse path threshold, so both
    // the contiguous dot product and the nonzero gather run on every ISA.
    for (double sparsity : {0.0, 0.05, 0.5, 0.9, 1.0}) {
      const LayerSpec layer = fc_layer("fc", 6 * 5 * 5, 33, /*relu=*/true);
      const ValueTensor input =
          random_tensor({1, 6, 5, 5}, sparsity, rng);
      const ValueTensor weights =
          random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
      expect_identical(fc_ref(input, weights, layer, quant),
                       oracle_fc(input, weights, layer, quant),
                       std::string("isa=") + util::isa_name(isa) +
                           " fc sparsity=" + std::to_string(sparsity));
    }
  }
}

/// A region call over an output sub-rectangle must reproduce the matching
/// slice of the full-output oracle (the executor computes tiles this way).
TEST(KernelsRegion, SubRectangleMatchesOracleSlice) {
  WithThreads threads(4);
  util::Rng rng(105);
  const Quant quant;
  const LayerSpec layer = conv_layer("conv", 4, 16, 16, 6, 3, 1, 1);
  const ValueTensor input = random_tensor(layer.input_shape(), 0.4, rng);
  const ValueTensor weights =
      random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
  const ValueTensor want = oracle_conv(input, weights, layer, quant);

  const kernels::Span ys{3, 7};
  const kernels::Span xs{0, 9};  // touches the left border column
  ValueTensor tile({1, layer.out_channels(), ys.size, xs.size});
  kernels::run_layer_region(
      layer, kernels::PaddedInput::full(input, layer.in_h, layer.in_w),
      weights, ys, xs, quant, &tile, 0, 0);
  for (Index m = 0; m < layer.out_channels(); ++m) {
    for (Index y = 0; y < ys.size; ++y) {
      for (Index x = 0; x < xs.size; ++x) {
        ASSERT_EQ(tile.at_unchecked(0, m, y, x),
                  want.at_unchecked(0, m, ys.begin + y, xs.begin + x))
            << "m=" << m << " y=" << y << " x=" << x;
      }
    }
  }
}

/// A tile-local input buffer (origin-offset view of the logical map, as the
/// fused-pyramid walk produces) must compute the same outputs as the full
/// view, including where the receptive field overlaps the padding ring.
TEST(KernelsRegion, LocalBufferMatchesFullView) {
  WithThreads threads(4);
  util::Rng rng(106);
  const Quant quant;
  const LayerSpec layer = conv_layer("conv", 3, 16, 16, 5, 3, 1, 1);
  const ValueTensor input = random_tensor(layer.input_shape(), 0.4, rng);
  const ValueTensor weights =
      random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
  const ValueTensor want = oracle_conv(input, weights, layer, quant);

  // Output rows [4,8) x cols [3,7) need input rows [3,9) x cols [2,8).
  const Index iy0 = 3, iy1 = 9, ix0 = 2, ix1 = 8;
  ValueTensor local({1, layer.in_c, iy1 - iy0, ix1 - ix0});
  for (Index c = 0; c < layer.in_c; ++c) {
    for (Index y = iy0; y < iy1; ++y) {
      for (Index x = ix0; x < ix1; ++x) {
        local.at_unchecked(0, c, y - iy0, x - ix0) =
            input.at_unchecked(0, c, y, x);
      }
    }
  }
  const kernels::Span ys{4, 4};
  const kernels::Span xs{3, 4};
  ValueTensor tile({1, layer.out_channels(), ys.size, xs.size});
  kernels::run_layer_region(
      layer, kernels::PaddedInput::local(local, iy0, ix0, layer.in_h,
                                         layer.in_w),
      weights, ys, xs, quant, &tile, 0, 0);
  for (Index m = 0; m < layer.out_channels(); ++m) {
    for (Index y = 0; y < ys.size; ++y) {
      for (Index x = 0; x < xs.size; ++x) {
        ASSERT_EQ(tile.at_unchecked(0, m, y, x),
                  want.at_unchecked(0, m, ys.begin + y, xs.begin + x))
            << "m=" << m << " y=" << y << " x=" << x;
      }
    }
  }
}

/// End-to-end: a fused conv-conv-pool group executed in tiles through the
/// packed kernels matches the layer-at-a-time reference, element-exact.
TEST(KernelsFused, TiledFusedGroupMatchesReference) {
  WithThreads threads(4);
  const nn::Network net =
      nn::make_synthetic("fused_net", 20, 20, {8, 12}, 3, true);
  util::Rng rng(107);
  const ValueTensor input =
      random_tensor(net.layers.front().input_shape(), 0.4, rng);
  const auto weights = random_weights(net, 0.25, rng);

  dataflow::NetworkPlan plan;
  for (const LayerSpec& layer : net.layers) {
    dataflow::LayerPlan lp;
    lp.tile = {layer.out_h(), layer.out_w(), layer.in_c,
               layer.out_channels()};
    plan.layers.push_back(lp);
  }
  // Fuse each conv into its trailing layer and tile the tails into quarters
  // so every fused pyramid walks tile-local stage buffers.
  for (std::size_t i = 0; i + 1 < net.layers.size(); i += 2) {
    plan.layers[i].fuse_with_next = true;
    const LayerSpec& tail = net.layers[i + 1];
    plan.layers[i + 1].tile.th = std::max<Index>(1, (tail.out_h() + 1) / 2);
    plan.layers[i + 1].tile.tw = std::max<Index>(1, (tail.out_w() + 1) / 2);
  }

  const dataflow::FunctionalResult result =
      dataflow::run_functional(net, plan, input, weights);
  const auto reference = run_network_ref(net, input, weights, Quant{});
  ASSERT_EQ(result.outputs.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    expect_identical(result.outputs[i], reference[i],
                     "layer " + net.layers[i].name);
  }
}

}  // namespace
}  // namespace mocha::nn
