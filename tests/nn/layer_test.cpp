#include "nn/layer.hpp"

#include <gtest/gtest.h>

namespace mocha::nn {
namespace {

TEST(Layer, ConvGeometry) {
  // AlexNet conv1: 227x227x3, 96 maps, k=11, s=4, p=0 -> 55x55.
  const LayerSpec conv = conv_layer("conv1", 3, 227, 227, 96, 11, 4, 0);
  EXPECT_EQ(conv.out_h(), 55);
  EXPECT_EQ(conv.out_w(), 55);
  EXPECT_EQ(conv.out_channels(), 96);
  EXPECT_EQ(conv.macs(), 96LL * 55 * 55 * 3 * 11 * 11);
}

TEST(Layer, ConvSamePadding) {
  const LayerSpec conv = conv_layer("c", 64, 56, 56, 128, 3, 1, 1);
  EXPECT_EQ(conv.out_h(), 56);
  EXPECT_EQ(conv.out_w(), 56);
}

TEST(Layer, PoolGeometry) {
  const LayerSpec pool = pool_layer("p", 96, 55, 55, 3, 2);
  EXPECT_EQ(pool.out_h(), 27);
  EXPECT_EQ(pool.out_w(), 27);
  EXPECT_EQ(pool.out_channels(), 96);
  EXPECT_FALSE(pool.has_weights());
  EXPECT_EQ(pool.weight_elems(), 0);
}

TEST(Layer, FcGeometry) {
  const LayerSpec fc = fc_layer("fc", 9216, 4096);
  EXPECT_EQ(fc.out_h(), 1);
  EXPECT_EQ(fc.out_w(), 1);
  EXPECT_EQ(fc.macs(), 9216LL * 4096);
  EXPECT_EQ(fc.weight_shape().elems(), 9216LL * 4096);
}

TEST(Layer, ByteCountsUse16BitValues) {
  const LayerSpec conv = conv_layer("c", 3, 8, 8, 4, 3, 1, 1);
  EXPECT_EQ(conv.ifmap_bytes(), 3 * 8 * 8 * 2);
  EXPECT_EQ(conv.ofmap_bytes(), 4 * 8 * 8 * 2);
  EXPECT_EQ(conv.weight_bytes(), 4 * 3 * 3 * 3 * 2);
}

TEST(Layer, WeightShapes) {
  const LayerSpec conv = conv_layer("c", 16, 8, 8, 32, 3, 1, 1);
  EXPECT_EQ(conv.weight_shape(), (Shape4{32, 16, 3, 3}));
  const LayerSpec fc = fc_layer("f", 100, 10);
  EXPECT_EQ(fc.weight_shape(), (Shape4{10, 100, 1, 1}));
}

TEST(Layer, ValidateRejectsKernelLargerThanInput) {
  LayerSpec bad = conv_layer("ok", 3, 8, 8, 4, 3, 1, 1);
  bad.kernel = 11;
  EXPECT_THROW(bad.validate(), util::CheckFailure);
}

TEST(Layer, ValidateRejectsNonPositiveDims) {
  LayerSpec bad = conv_layer("ok", 3, 8, 8, 4, 3, 1, 1);
  bad.in_c = 0;
  EXPECT_THROW(bad.validate(), util::CheckFailure);
}

TEST(Layer, ValidateRejectsPaddedPool) {
  LayerSpec bad = pool_layer("p", 4, 8, 8, 2, 2);
  bad.pad = 1;
  EXPECT_THROW(bad.validate(), util::CheckFailure);
}

TEST(Layer, FactoryRejectsInvalid) {
  EXPECT_THROW(conv_layer("bad", 3, 4, 4, 8, 5, 1, 0), util::CheckFailure);
}

TEST(Layer, SummaryMentionsGeometry) {
  const LayerSpec conv = conv_layer("c", 3, 227, 227, 96, 11, 4, 0);
  const std::string s = conv.summary();
  EXPECT_NE(s.find("Conv"), std::string::npos);
  EXPECT_NE(s.find("k11"), std::string::npos);
  EXPECT_NE(s.find("s4"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
}

TEST(Layer, StridedConvGeometry) {
  // Output formula (H + 2P - K) / S + 1 truncates.
  const LayerSpec conv = conv_layer("c", 1, 7, 7, 1, 3, 2, 0);
  EXPECT_EQ(conv.out_h(), 3);
}

}  // namespace
}  // namespace mocha::nn
