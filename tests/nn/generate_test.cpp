#include "nn/generate.hpp"

#include <gtest/gtest.h>

namespace mocha::nn {
namespace {

TEST(Generate, SparsityIsControlled) {
  util::Rng rng(5);
  const ValueTensor t = random_tensor({1, 8, 32, 32}, 0.6, rng);
  EXPECT_NEAR(t.sparsity(), 0.6, 0.03);
}

TEST(Generate, DenseTensorHasNoZeros) {
  util::Rng rng(6);
  const ValueTensor t = random_tensor({1, 4, 16, 16}, 0.0, rng);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.0);
}

TEST(Generate, AllZeroTensor) {
  util::Rng rng(7);
  const ValueTensor t = random_tensor({1, 1, 8, 8}, 1.0, rng);
  EXPECT_DOUBLE_EQ(t.sparsity(), 1.0);
}

TEST(Generate, ValuesWithinRange) {
  util::Rng rng(8);
  const ValueTensor t = random_tensor({1, 2, 16, 16}, 0.3, rng, -10, 10);
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.flat(i), -10);
    EXPECT_LE(t.flat(i), 10);
  }
}

TEST(Generate, DeterministicPerSeed) {
  util::Rng a(9);
  util::Rng b(9);
  const ValueTensor ta = random_tensor({1, 2, 8, 8}, 0.4, a);
  const ValueTensor tb = random_tensor({1, 2, 8, 8}, 0.4, b);
  EXPECT_TRUE(ta == tb);
}

TEST(Generate, InvalidSparsityThrows) {
  util::Rng rng(10);
  EXPECT_THROW(random_tensor({1, 1, 2, 2}, 1.5, rng), util::CheckFailure);
  EXPECT_THROW(random_tensor({1, 1, 2, 2}, -0.1, rng), util::CheckFailure);
}

TEST(Generate, WeightsMatchLayerShapes) {
  const Network net = make_lenet5();
  util::Rng rng(11);
  const auto weights = random_weights(net, 0.25, rng);
  ASSERT_EQ(weights.size(), net.layers.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (net.layers[i].has_weights()) {
      EXPECT_EQ(weights[i].shape(), net.layers[i].weight_shape());
    } else {
      EXPECT_TRUE(weights[i].empty());
    }
  }
}

TEST(SparsityProfile, InputLayerIsDense) {
  const Network net = make_alexnet();
  const SparsityProfile profile;
  EXPECT_DOUBLE_EQ(profile.ifmap_sparsity(net, 0), profile.input_sparsity);
}

TEST(SparsityProfile, SparsityGrowsWithDepth) {
  const Network net = make_vgg16();
  const SparsityProfile profile;
  const double early = profile.ifmap_sparsity(net, 1);
  const double late = profile.ifmap_sparsity(net, net.layers.size() - 1);
  EXPECT_LT(early, late);
  EXPECT_GE(early, profile.first_activation_sparsity - 1e-9);
  EXPECT_LE(late, profile.last_activation_sparsity + 1e-9);
}

TEST(SparsityProfile, KernelSparsityZeroForPool) {
  const Network net = make_alexnet();
  const SparsityProfile profile;
  EXPECT_DOUBLE_EQ(profile.kernel_sparsity(net, 1), 0.0);  // pool1
}

TEST(SparsityProfile, KernelSparsityInConfiguredBand) {
  const Network net = make_alexnet();
  const SparsityProfile profile;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    if (!net.layers[i].has_weights()) continue;
    const double s = profile.kernel_sparsity(net, i);
    EXPECT_GE(s, profile.first_kernel_sparsity - 1e-9);
    EXPECT_LE(s, profile.last_kernel_sparsity + 1e-9);
  }
}

TEST(SparsityProfile, OutOfRangeLayerThrows) {
  const Network net = make_lenet5();
  const SparsityProfile profile;
  EXPECT_THROW(profile.ifmap_sparsity(net, net.layers.size()),
               util::CheckFailure);
}

}  // namespace
}  // namespace mocha::nn
