#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "util/json_parse.hpp"

namespace mocha::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Trace, NoSessionActiveByDefault) {
  EXPECT_EQ(TraceSession::active(), nullptr);
  EXPECT_FALSE(tracing_active());
  // Scopes with no session are inert.
  { MOCHA_TRACE_SCOPE("idle", "test"); }
}

TEST(Trace, ScopesAndSimEventsAreRecorded) {
  const std::string path = temp_path("trace_events.json");
  {
    TraceSession session(path);
    EXPECT_EQ(TraceSession::active(), &session);
    { MOCHA_TRACE_SCOPE("span_a", "test"); }
    { MOCHA_TRACE_SCOPE("span_b", "test"); }
    session.sim_event("laneX", "task0", "Test", 0, 10);
    session.set_sim_offset(100);
    session.sim_event("laneX", "task1", "Test", 5, 10);
#if MOCHA_OBS
    EXPECT_EQ(session.event_count(), 4u);
#else
    EXPECT_EQ(session.event_count(), 2u);  // scopes compiled out
#endif
  }
  const util::JsonValue doc = util::parse_json(slurp(path));
  const util::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  double task1_ts = -1;
  bool saw_span_a = false;
  for (const util::JsonValue& e : events.array) {
    if (e.at("ph").string != "X") continue;
    if (e.at("name").string == "task1") task1_ts = e.at("ts").number;
    if (e.at("name").string == "span_a") saw_span_a = true;
  }
  EXPECT_EQ(task1_ts, 105.0);  // offset 100 + ts 5
#if MOCHA_OBS
  EXPECT_TRUE(saw_span_a);
#endif
  std::remove(path.c_str());
}

// End-to-end: a real accelerator run traced in-process, then the document
// re-parsed and structurally validated — the same checks chrome://tracing
// would need to hold (complete events with pid/tid/ts/dur, and per-lane
// simulated-time events that are monotone and non-overlapping once sorted).
TEST(TraceValidation, AcceleratorRunProducesWellFormedTimeline) {
  const std::string path = temp_path("trace_lenet.json");
  {
    TraceSession session(path);
    const core::Accelerator acc = core::make_mocha_accelerator();
    const core::RunReport report = acc.run(nn::make_lenet5());
    EXPECT_GT(report.total_cycles, 0u);
#if MOCHA_OBS
    EXPECT_GT(session.event_count(), 0u);
#endif
  }
  const util::JsonValue doc = util::parse_json(slurp(path));
  const util::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  struct Span {
    double ts = 0;
    double dur = 0;
  };
  std::map<std::pair<int, int>, std::vector<Span>> lanes;
  int meta_events = 0;
  for (const util::JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "M") {
      ++meta_events;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid = static_cast<int>(e.at("tid").number);
    EXPECT_FALSE(e.at("name").string.empty());
    EXPECT_FALSE(e.at("cat").string.empty());
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    lanes[{pid, tid}].push_back({e.at("ts").number, e.at("dur").number});
  }
  // Process names for both clock domains plus one thread_name per lane.
  EXPECT_GE(meta_events, 2);

#if MOCHA_OBS
  // The simulated domain (pid 1) must exist and every lane must hold
  // non-overlapping tasks: each resource unit executes one task at a time.
  bool saw_sim_lane = false;
  for (auto& [key, spans] : lanes) {
    if (key.first != 1) continue;
    saw_sim_lane = true;
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.ts < b.ts; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].ts, spans[i - 1].ts) << "lane tid " << key.second;
      EXPECT_GE(spans[i].ts, spans[i - 1].ts + spans[i - 1].dur)
          << "overlap on lane tid " << key.second << " at index " << i;
    }
  }
  EXPECT_TRUE(saw_sim_lane);
#endif
  std::remove(path.c_str());
}

TEST(Trace, SecondConcurrentSessionIsRejected) {
  const std::string path = temp_path("trace_first.json");
  const std::string path2 = temp_path("trace_second.json");
  {
    TraceSession session(path);
    EXPECT_THROW(TraceSession second(path2), util::CheckFailure);
  }
  EXPECT_EQ(TraceSession::active(), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mocha::obs
