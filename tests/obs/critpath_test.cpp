// Critical-path analyzer on hand-built golden graphs — chains, diamonds,
// and contention-limited graphs where the answers are checkable on paper —
// plus what-if prediction-vs-replay equivalence and the end-to-end
// executor property: with unbounded resources the dependence critical path
// IS the makespan.
#include "obs/critpath.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/accelerator.hpp"
#include "core/morph.hpp"
#include "core/planner.hpp"
#include "dataflow/schedule.hpp"
#include "nn/generate.hpp"
#include "nn/network.hpp"

namespace mocha::obs {
namespace {

using sim::Cycle;
using sim::Engine;
using sim::ResourceSpec;
using sim::RunResult;
using sim::Task;
using sim::TaskGraph;
using sim::TaskId;
using sim::TaskKind;

Task make_task(std::vector<sim::ResourceId> resources, Cycle duration,
               std::vector<TaskId> deps = {},
               TaskKind kind = TaskKind::Compute) {
  Task t;
  t.kind = kind;
  t.resources = std::move(resources);
  t.duration = duration;
  t.deps = std::move(deps);
  return t;
}

// ---- pure chain: critical path == makespan, zero slack everywhere ------

TEST(CritPath, PureChainIsFullyCritical) {
  Engine engine({{"r", 4}});
  TaskGraph graph;
  const TaskId a = graph.add(make_task({0}, 5));
  const TaskId b = graph.add(make_task({0}, 7, {a}));
  const TaskId c = graph.add(make_task({0}, 3, {b}));
  const RunResult run = engine.run(graph);
  ASSERT_EQ(run.makespan, 15u);

  const CritPathReport report = analyze_critical_path(graph, run);
  EXPECT_EQ(report.makespan, 15u);
  EXPECT_EQ(report.dep_critical_cycles, 15u);
  EXPECT_EQ(report.contention_gap, 0u);
  EXPECT_EQ(report.queue_entered_cycles, 0u);
  EXPECT_TRUE(report.path_complete);
  ASSERT_EQ(report.path.size(), 3u);
  EXPECT_EQ(report.path[0].task, a);
  EXPECT_EQ(report.path[0].entered_by, CritEdge::Start);
  EXPECT_EQ(report.path[1].task, b);
  EXPECT_EQ(report.path[1].entered_by, CritEdge::Dep);
  EXPECT_EQ(report.path[2].task, c);
  for (TaskId t : {a, b, c}) {
    EXPECT_EQ(report.slack[static_cast<std::size_t>(t)], 0u);
    EXPECT_TRUE(report.on_path[static_cast<std::size_t>(t)]);
  }
}

// ---- diamond: slack sits on the short arm only -------------------------

TEST(CritPath, DiamondSlackOnShortArm) {
  //      a(2)
  //     .    .
  //  b(10)   c(4)     <- c is 6 cycles slacker
  //     .    .
  //      d(3)
  Engine engine({{"r", 4}});
  TaskGraph graph;
  const TaskId a = graph.add(make_task({0}, 2));
  const TaskId b = graph.add(make_task({0}, 10, {a}));
  const TaskId c = graph.add(make_task({0}, 4, {a}));
  const TaskId d = graph.add(make_task({0}, 3, {b, c}));
  const RunResult run = engine.run(graph);
  ASSERT_EQ(run.makespan, 15u);

  const CritPathReport report = analyze_critical_path(graph, run);
  EXPECT_EQ(report.dep_critical_cycles, 15u);
  EXPECT_EQ(report.contention_gap, 0u);
  EXPECT_TRUE(report.path_complete);
  EXPECT_EQ(report.slack[static_cast<std::size_t>(a)], 0u);
  EXPECT_EQ(report.slack[static_cast<std::size_t>(b)], 0u);
  EXPECT_EQ(report.slack[static_cast<std::size_t>(c)], 6u);
  EXPECT_EQ(report.slack[static_cast<std::size_t>(d)], 0u);
  EXPECT_TRUE(report.on_path[static_cast<std::size_t>(a)]);
  EXPECT_TRUE(report.on_path[static_cast<std::size_t>(b)]);
  EXPECT_FALSE(report.on_path[static_cast<std::size_t>(c)]);
  EXPECT_TRUE(report.on_path[static_cast<std::size_t>(d)]);
}

// ---- contention: the chain crosses a queue edge ------------------------

TEST(CritPath, ContentionChainUsesQueueEdge) {
  // Two independent 10-cycle tasks on a capacity-1 resource: no dependence
  // chain longer than 10, but the makespan is 20. The second task enters
  // the critical chain through a queue edge, and the whole gap is
  // contention.
  Engine engine({{"r", 1}});
  TaskGraph graph;
  const TaskId a = graph.add(make_task({0}, 10));
  const TaskId b = graph.add(make_task({0}, 10));
  const RunResult run = engine.run(graph);
  ASSERT_EQ(run.makespan, 20u);

  const CritPathReport report = analyze_critical_path(graph, run);
  EXPECT_EQ(report.dep_critical_cycles, 10u);
  EXPECT_EQ(report.contention_gap, 10u);
  EXPECT_EQ(report.queue_entered_cycles, 10u);
  EXPECT_TRUE(report.path_complete);
  ASSERT_EQ(report.path.size(), 2u);
  EXPECT_EQ(report.path[0].task, a);
  EXPECT_EQ(report.path[1].task, b);
  EXPECT_EQ(report.path[1].entered_by, CritEdge::Queue);
  // CPM slack is dependence-only: a's chain ends 10 cycles before the
  // makespan (the queueing gap), b finishes at the makespan.
  EXPECT_EQ(report.slack[static_cast<std::size_t>(a)], 10u);
  EXPECT_EQ(report.slack[static_cast<std::size_t>(b)], 0u);
}

TEST(CritPath, ResourceAttribution) {
  Engine engine({{"bus", 1}, {"pe", 2}});
  TaskGraph graph;
  const TaskId load = graph.add(make_task({0}, 6, {}, TaskKind::DmaLoad));
  graph.add(make_task({1}, 4, {load}, TaskKind::Compute));
  const RunResult run = engine.run(graph);
  const CritPathReport report = analyze_critical_path(graph, run);

  ASSERT_EQ(report.resources.size(), 2u);
  EXPECT_EQ(report.resources[0].name, "bus");
  EXPECT_EQ(report.resources[0].busy_cycles, 6u);
  EXPECT_EQ(report.resources[0].critical_cycles, 6u);
  EXPECT_EQ(report.resources[0].bound_tasks, 1u);
  EXPECT_EQ(report.resources[1].critical_cycles, 4u);

  ASSERT_FALSE(report.kinds.empty());
  // Sorted by critical cycles: the 6-cycle load dominates the 4-cycle
  // compute.
  EXPECT_EQ(report.kinds[0].kind, TaskKind::DmaLoad);
  EXPECT_EQ(report.kinds[0].critical_cycles, 6u);
  const CritPathSummary summary = summarize(report);
  EXPECT_EQ(summary.dominant_kind, "dma_load");
  EXPECT_EQ(summary.dominant_kind_cycles, 6u);
  EXPECT_EQ(summary.path_tasks, 2u);
}

// ---- what-if: prediction vs replay -------------------------------------

TEST(CritPath, WhatIfCapacityBoundsContainReplay) {
  // Four independent tasks on capacity 1: makespan 40. Doubling the
  // capacity must land the replay inside [predicted, upper_bound].
  Engine engine({{"r", 1}});
  TaskGraph graph;
  for (int i = 0; i < 4; ++i) graph.add(make_task({0}, 10));
  const RunResult run = engine.run(graph);
  ASSERT_EQ(run.makespan, 40u);

  const WhatIfOutcome outcome =
      evaluate_what_if(graph, run, what_if_capacity_scale("r", 2.0));
  EXPECT_TRUE(outcome.applicable);
  EXPECT_FALSE(outcome.exact);
  EXPECT_EQ(outcome.baseline, 40u);
  EXPECT_EQ(outcome.predicted, 20u);  // work bound: 40 cycles / cap 2
  EXPECT_EQ(outcome.replayed, 20u);
  EXPECT_TRUE(outcome.within_bounds);
  EXPECT_LE(outcome.predicted, outcome.replayed);
  EXPECT_LE(outcome.replayed, outcome.upper_bound);
}

TEST(CritPath, WhatIfUnboundedIsExact) {
  // Chain of 3 + contention load: unbounded removes all queueing, so the
  // prediction is the dependence critical path and must match the replay
  // exactly.
  Engine engine({{"r", 1}});
  TaskGraph graph;
  const TaskId a = graph.add(make_task({0}, 5));
  const TaskId b = graph.add(make_task({0}, 7, {a}));
  graph.add(make_task({0}, 3, {b}));
  graph.add(make_task({0}, 9));  // competes for the same unit
  const RunResult run = engine.run(graph);
  ASSERT_GT(run.makespan, 15u);  // contention stretched the schedule

  const WhatIfOutcome outcome =
      evaluate_what_if(graph, run, what_if_unbounded());
  EXPECT_TRUE(outcome.exact);
  EXPECT_EQ(outcome.predicted, 15u);
  EXPECT_EQ(outcome.replayed, 15u);
  EXPECT_EQ(outcome.upper_bound, outcome.predicted);
  EXPECT_TRUE(outcome.within_bounds);
}

TEST(CritPath, WhatIfSpeedScalesKindDurations) {
  Engine engine({{"r", 2}});
  TaskGraph graph;
  const TaskId load = graph.add(make_task({0}, 10, {}, TaskKind::DmaLoad));
  graph.add(make_task({0}, 5, {load}, TaskKind::Compute));
  const RunResult run = engine.run(graph);
  ASSERT_EQ(run.makespan, 15u);

  const WhatIfOutcome outcome =
      evaluate_what_if(graph, run, what_if_speed(TaskKind::DmaLoad, 2.0));
  EXPECT_TRUE(outcome.applicable);
  EXPECT_EQ(outcome.replayed, 10u);  // ceil(10/2) + 5
  EXPECT_TRUE(outcome.within_bounds);

  // No decompress tasks in the graph: the scenario is a no-op.
  const WhatIfOutcome absent =
      evaluate_what_if(graph, run, what_if_speed(TaskKind::Decompress, 2.0));
  EXPECT_FALSE(absent.applicable);
  EXPECT_EQ(absent.replayed, run.makespan);
}

TEST(CritPath, WhatIfMissingResourceIsInapplicable) {
  Engine engine({{"r", 1}});
  TaskGraph graph;
  graph.add(make_task({0}, 10));
  const RunResult run = engine.run(graph);
  const WhatIfOutcome outcome =
      evaluate_what_if(graph, run, what_if_capacity_add("no_such", 1));
  EXPECT_FALSE(outcome.applicable);
  EXPECT_EQ(outcome.replayed, run.makespan);
  EXPECT_TRUE(outcome.within_bounds);
}

TEST(CritPath, ParseWhatIfGrammar) {
  EXPECT_EQ(parse_what_if("unbounded").kind, WhatIf::Kind::Unbounded);

  const WhatIf add = parse_what_if("dram_channels+1");
  EXPECT_EQ(add.kind, WhatIf::Kind::Capacity);
  EXPECT_EQ(add.resource, "dram_channels");
  EXPECT_EQ(add.cap_add, 1);
  EXPECT_EQ(add.name, "dram_channels+1");

  const WhatIf scale = parse_what_if("codec_units*2");
  EXPECT_EQ(scale.kind, WhatIf::Kind::Capacity);
  EXPECT_DOUBLE_EQ(scale.cap_scale, 2.0);

  const WhatIf speed = parse_what_if("reconfig/2");
  EXPECT_EQ(speed.kind, WhatIf::Kind::Speed);
  EXPECT_EQ(speed.task_kind, TaskKind::Reconfig);
  EXPECT_DOUBLE_EQ(speed.speed_factor, 2.0);

  EXPECT_THROW(parse_what_if(""), CheckFailure);
  EXPECT_THROW(parse_what_if("dram_channels"), CheckFailure);
  EXPECT_THROW(parse_what_if("dram_channels+0"), CheckFailure);
  EXPECT_THROW(parse_what_if("dram_channels*nope"), CheckFailure);
  EXPECT_THROW(parse_what_if("no_such_kind/2"), CheckFailure);
}

// ---- executed schedules from the real builder --------------------------

// The acceptance property on a real network: for every fusion group of the
// planned vgg16 schedule, the unbounded what-if prediction (the dependence
// critical path) equals the replayed engine makespan exactly. The capacity
// band sweep runs on the smaller alexnet below; this test keeps to the one
// exact check so it stays tractable under sanitizers.
TEST(CritPathExecutor, VggUnboundedCriticalPathEqualsMakespan) {
  const nn::Network net = nn::make_vgg16();
  const fabric::FabricConfig config = fabric::mocha_default_config();
  const core::MorphController planner(model::default_tech(), {});
  const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
  const dataflow::NetworkPlan plan = planner.plan(net, config, stats);

  for (const auto& group : plan.fusion_groups()) {
    dataflow::BuiltSchedule built =
        dataflow::build_group_schedule(net, plan, group, config, stats);
    const sim::Engine engine(built.layout.specs);
    const RunResult run = engine.run(built.graph, /*detailed=*/true);

    const CritPathReport report = analyze_critical_path(built.graph, run);
    EXPECT_EQ(report.makespan, run.makespan);
    EXPECT_TRUE(report.path_complete) << "group at layer " << group.first;

    const WhatIfOutcome unbounded =
        evaluate_what_if(built.graph, run, what_if_unbounded());
    EXPECT_TRUE(unbounded.exact);
    EXPECT_TRUE(unbounded.within_bounds) << "group at layer " << group.first;
    EXPECT_EQ(unbounded.predicted, report.dep_critical_cycles);
    EXPECT_EQ(unbounded.replayed, unbounded.predicted)
        << "group at layer " << group.first
        << ": unbounded engine run disagrees with the dependence CP";
  }
}

// Slack is internally consistent on an executed schedule — the chain's
// durations sum to the makespan and per-kind attribution accounts for all
// of it — and every capacity what-if replays inside its analytic band.
TEST(CritPathExecutor, AlexnetChainAndWhatIfBands) {
  const nn::Network net = nn::make_alexnet();
  const fabric::FabricConfig config = fabric::mocha_default_config();
  const core::MorphController planner(model::default_tech(), {});
  const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
  const dataflow::NetworkPlan plan = planner.plan(net, config, stats);

  for (const auto& group : plan.fusion_groups()) {
    dataflow::BuiltSchedule built =
        dataflow::build_group_schedule(net, plan, group, config, stats);
    const sim::Engine engine(built.layout.specs);
    const RunResult run = engine.run(built.graph, /*detailed=*/true);
    const CritPathReport report = analyze_critical_path(built.graph, run);

    ASSERT_TRUE(report.path_complete);
    Cycle chain = 0;
    for (const CritStep& step : report.path) {
      const Task& t = built.graph.task(step.task);
      chain += t.finish - t.start;
      EXPECT_TRUE(report.on_path[static_cast<std::size_t>(step.task)]);
    }
    EXPECT_EQ(chain, run.makespan);

    Cycle kind_critical = 0;
    for (const CritKind& kind : report.kinds) {
      kind_critical += kind.critical_cycles;
    }
    EXPECT_EQ(kind_critical, run.makespan);

    for (const char* spec :
         {"dram_channels+1", "codec_units*2", "pe_groups*2"}) {
      const WhatIfOutcome outcome =
          evaluate_what_if(built.graph, run, parse_what_if(spec));
      EXPECT_TRUE(outcome.within_bounds)
          << spec << " replay " << outcome.replayed << " outside ["
          << outcome.predicted << ", " << outcome.upper_bound << "] in group "
          << group.first;
    }
  }
}

}  // namespace
}  // namespace mocha::obs
