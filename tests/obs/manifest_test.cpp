#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include "core/report_json.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace mocha::obs {
namespace {

TEST(Manifest, CurrentFillsEnvironmentFields) {
  const RunManifest manifest = RunManifest::current("unit_test");
  EXPECT_EQ(manifest.schema, "mocha.manifest.v1");
  EXPECT_EQ(manifest.tool, "unit_test");
  EXPECT_GE(manifest.threads, 1);
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_FALSE(manifest.version.empty());
}

TEST(Manifest, JsonHasEveryField) {
  RunManifest manifest = RunManifest::current("unit_test");
  manifest.network = "alexnet";
  manifest.accelerator = "mocha";
  manifest.objective = "edp";
  manifest.batch = 4;
  manifest.sram_bytes = 1 << 20;
  manifest.pe_rows = 16;
  manifest.pe_cols = 16;
  manifest.clock_ghz = 1.0;

  util::JsonWriter json;
  manifest.write_json(json);
  const util::JsonValue doc = util::parse_json(json.str());
  EXPECT_EQ(doc.at("schema").string, "mocha.manifest.v1");
  EXPECT_EQ(doc.at("tool").string, "unit_test");
  EXPECT_EQ(doc.at("network").string, "alexnet");
  EXPECT_EQ(doc.at("accelerator").string, "mocha");
  EXPECT_EQ(doc.at("objective").string, "edp");
  EXPECT_EQ(doc.at("batch").number, 4.0);
  EXPECT_EQ(doc.at("sram_bytes").number, static_cast<double>(1 << 20));
  EXPECT_EQ(doc.at("pe_rows").number, 16.0);
  EXPECT_EQ(doc.at("pe_cols").number, 16.0);
  EXPECT_EQ(doc.at("clock_ghz").number, 1.0);
  EXPECT_GE(doc.at("threads").number, 1.0);
  EXPECT_NE(doc.find("build_type"), nullptr);
  EXPECT_NE(doc.find("version"), nullptr);
}

// The report JSON keeps every pre-existing key and gains the manifest,
// metrics, and per-group sim_metrics blocks.
TEST(Manifest, ReportJsonEmbedsManifestAndMetrics) {
  core::RunReport report;
  report.accelerator = "mocha";
  report.network = "testnet";
  report.clock_ghz = 1.0;
  core::GroupReport group;
  group.label = "conv1";
  group.cycles = 100;
  group.dense_macs = 1000;
  group.task_count = 7;
  group.resource_use.push_back({"pe_groups", 4, 320, 0.8});
  group.queue_wait_cycles.add(3);
  group.queue_wait_cycles.add(5);
  report.groups.push_back(group);
  report.total_cycles = 100;

  MetricsRegistry registry;
  registry.counter_add("executor.tiles_computed", 12);
  const MetricsSnapshot snapshot = registry.snapshot();
  const RunManifest manifest = RunManifest::current("unit_test");

  const util::JsonValue doc =
      util::parse_json(core::report_to_json(report, &manifest, &snapshot));

  // Backward-compatible keys.
  EXPECT_EQ(doc.at("accelerator").string, "mocha");
  EXPECT_EQ(doc.at("network").string, "testnet");
  EXPECT_NE(doc.find("total_cycles"), nullptr);
  EXPECT_NE(doc.find("throughput_gops"), nullptr);
  const util::JsonValue& jgroup = doc.at("groups").array.at(0);
  EXPECT_EQ(jgroup.at("label").string, "conv1");
  EXPECT_NE(jgroup.find("plan"), nullptr);
  EXPECT_NE(jgroup.find("energy"), nullptr);

  // New blocks.
  EXPECT_EQ(doc.at("manifest").at("tool").string, "unit_test");
  EXPECT_EQ(
      doc.at("metrics").at("counters").at("executor.tiles_computed").number,
      12.0);
  const util::JsonValue& sim = jgroup.at("sim_metrics");
  EXPECT_EQ(sim.at("tasks").number, 7.0);
  EXPECT_EQ(sim.at("resources").array.at(0).at("name").string, "pe_groups");
  EXPECT_EQ(sim.at("resources").array.at(0).at("busy_cycles").number, 320.0);
  EXPECT_EQ(sim.at("queue_wait_cycles").at("count").number, 2.0);
  EXPECT_EQ(sim.at("queue_wait_cycles").at("max").number, 5.0);
  EXPECT_DOUBLE_EQ(sim.at("queue_wait_cycles").at("mean").number, 4.0);
}

// The old single-argument call still works and omits the new top-level
// blocks entirely.
TEST(Manifest, ReportJsonWithoutManifestOmitsBlocks) {
  core::RunReport report;
  report.accelerator = "mocha";
  report.network = "testnet";
  report.clock_ghz = 1.0;
  const util::JsonValue doc = util::parse_json(core::report_to_json(report));
  EXPECT_EQ(doc.find("manifest"), nullptr);
  EXPECT_EQ(doc.find("metrics"), nullptr);
}

}  // namespace
}  // namespace mocha::obs
