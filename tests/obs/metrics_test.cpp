#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/json_parse.hpp"

namespace mocha::obs {
namespace {

TEST(Metrics, CountersSumAcrossThreadsExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.counter_add("shared.count", 1);
        registry.histogram_record("shared.hist", i % 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("shared.count"),
            static_cast<std::int64_t>(kThreads) * kIncrements);
  const HistogramData& hist = snap.histograms.at("shared.hist");
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(hist.min, 0);
  EXPECT_EQ(hist.max, 99);
}

TEST(Metrics, SnapshotWhileUpdatingIsSafe) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      do {
        registry.counter_add("racing.count", 1);
      } while (!stop.load());
    });
  }
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.snapshot();
    if (const auto it = snap.counters.find("racing.count");
        it != snap.counters.end()) {
      EXPECT_GE(it->second, 0);
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_GT(registry.snapshot().counters.at("racing.count"), 0);
}

TEST(Metrics, GaugeLastWriteWinsAcrossShards) {
  MetricsRegistry registry;
  // Two different threads touch the gauge (two different shards); the
  // later write must win in the merged snapshot regardless of shard order.
  std::thread([&] { registry.gauge_set("g.value", 1); }).join();
  std::thread([&] { registry.gauge_set("g.value", 2); }).join();
  EXPECT_EQ(registry.snapshot().gauges.at("g.value"), 2);
  registry.gauge_set("g.value", 7);
  EXPECT_EQ(registry.snapshot().gauges.at("g.value"), 7);
}

TEST(Metrics, HistogramBucketsAndMerge) {
  EXPECT_EQ(HistogramData::bucket_of(-5), 0);
  EXPECT_EQ(HistogramData::bucket_of(0), 0);
  EXPECT_EQ(HistogramData::bucket_of(1), 1);
  EXPECT_EQ(HistogramData::bucket_of(2), 2);
  EXPECT_EQ(HistogramData::bucket_of(3), 2);
  EXPECT_EQ(HistogramData::bucket_of(4), 3);

  HistogramData a;
  a.add(1);
  a.add(10);
  HistogramData b;
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 111);
  EXPECT_EQ(a.min, 1);
  EXPECT_EQ(a.max, 100);
  EXPECT_DOUBLE_EQ(a.mean(), 37.0);
}

TEST(Metrics, HistogramPercentiles) {
  HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  HistogramData h;
  for (int v : {10, 20, 40, 80, 160}) h.add(v);
  // Clamped to the observed range at the extremes.
  EXPECT_DOUBLE_EQ(h.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 160.0);
  // Interpolated estimates stay inside the range and are monotone in p.
  double prev = h.percentile(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double value = h.percentile(p);
    EXPECT_GE(value, 10.0);
    EXPECT_LE(value, 160.0);
    EXPECT_GE(value, prev) << "p" << p;
    prev = value;
  }
  // The estimate's error is bounded by one log2 bucket: the median rank
  // lands in bucket [32, 64), so p50 must too.
  EXPECT_GE(h.percentile(50), 32.0);
  EXPECT_LE(h.percentile(50), 64.0);

  // A single value collapses every percentile onto it.
  HistogramData one;
  one.add(1000);
  EXPECT_DOUBLE_EQ(one.percentile(0), 1000.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 1000.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 1000.0);
}

TEST(Metrics, ResetDropsValues) {
  MetricsRegistry registry;
  registry.counter_add("c", 3);
  registry.gauge_set("g", 5);
  registry.histogram_record("h", 9);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(Metrics, MacrosAreGatedByEnabledFlag) {
  MetricsRegistry& global = MetricsRegistry::global();
  global.reset();
  global.set_enabled(false);
  MOCHA_METRIC_ADD("gated.count", 1);
  MOCHA_METRIC_GAUGE("gated.gauge", 1);
  MOCHA_METRIC_HIST("gated.hist", 1);
#if MOCHA_OBS
  EXPECT_TRUE(global.snapshot().counters.empty());
  global.set_enabled(true);
  MOCHA_METRIC_ADD("gated.count", 2);
  MOCHA_METRIC_GAUGE("gated.gauge", 3);
  MOCHA_METRIC_HIST("gated.hist", 4);
  global.set_enabled(false);
  const MetricsSnapshot snap = global.snapshot();
  EXPECT_EQ(snap.counters.at("gated.count"), 2);
  EXPECT_EQ(snap.gauges.at("gated.gauge"), 3);
  EXPECT_EQ(snap.histograms.at("gated.hist").count, 1u);
#else
  // Compiled out: nothing recorded no matter the flag.
  global.set_enabled(true);
  MOCHA_METRIC_ADD("gated.count", 2);
  global.set_enabled(false);
  EXPECT_TRUE(global.snapshot().counters.empty());
#endif
  global.reset();
}

TEST(Metrics, SnapshotJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter_add("sub.count", 42);
  registry.gauge_set("sub.gauge", -3);
  registry.histogram_record("sub.hist_cycles", 7);
  registry.histogram_record("sub.hist_cycles", 9);

  const util::JsonValue doc =
      util::parse_json(registry.snapshot().to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("sub.count").number, 42.0);
  EXPECT_EQ(doc.at("gauges").at("sub.gauge").number, -3.0);
  const util::JsonValue& hist = doc.at("histograms").at("sub.hist_cycles");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_EQ(hist.at("sum").number, 16.0);
  EXPECT_EQ(hist.at("min").number, 7.0);
  EXPECT_EQ(hist.at("max").number, 9.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").number, 8.0);
  ASSERT_TRUE(hist.at("log2_buckets").is_array());
  EXPECT_FALSE(hist.at("log2_buckets").array.empty());
  // Derived percentiles ride along so consumers (mocha_serve's SLO
  // report, dashboards) never re-implement the estimator.
  const HistogramData expected = [] {
    HistogramData h;
    h.add(7);
    h.add(9);
    return h;
  }();
  EXPECT_DOUBLE_EQ(hist.at("p50").number, expected.percentile(50));
  EXPECT_DOUBLE_EQ(hist.at("p90").number, expected.percentile(90));
  EXPECT_DOUBLE_EQ(hist.at("p99").number, expected.percentile(99));
}

}  // namespace
}  // namespace mocha::obs
