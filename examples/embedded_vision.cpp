// Scenario: an embedded always-on vision pipeline (the abstract's
// motivating domain — video classification in embedded systems).
//
// An engineer must pick an accelerator configuration that sustains a target
// frame rate for AlexNet inference within an energy budget per frame. This
// example sweeps clock and PE-array options on MOCHA, reports frames/s and
// mJ/frame, and shows what the same silicon budget buys on the next-best
// fixed accelerator.
//
//   ./build/examples/embedded_vision
#include <iostream>

#include "baseline/baselines.hpp"
#include "core/accelerator.hpp"
#include "model/area.hpp"
#include "util/table.hpp"

int main() {
  using namespace mocha;
  const nn::Network net = nn::make_alexnet();
  const double target_fps = 15.0;
  const double energy_budget_mj = 1.2;  // per frame

  util::Table table({"config", "area mm2", "fps", "mJ/frame", "meets fps",
                     "meets energy"});
  const model::AreaModel area(model::default_tech());

  struct Option {
    const char* label;
    int dim;
    double clock;
  };
  for (const Option& option : {Option{"8x8 @200MHz", 8, 0.2},
                               Option{"8x8 @400MHz", 8, 0.4},
                               Option{"12x12 @200MHz", 12, 0.2},
                               Option{"16x16 @200MHz", 16, 0.2}}) {
    auto config = fabric::mocha_default_config();
    config.pe_rows = config.pe_cols = option.dim;
    config.clock_ghz = option.clock;
    const core::RunReport report =
        core::make_mocha_accelerator(config).run(net);
    const double fps = 1000.0 / report.runtime_ms();
    const double mj = report.total_energy_pj * 1e-9;
    table.row()
        .cell(option.label)
        .cell(area.total_mm2(config))
        .cell(fps, 1)
        .cell(mj, 2)
        .cell(fps >= target_fps ? "yes" : "no")
        .cell(mj <= energy_budget_mj ? "yes" : "no");
  }
  table.print(std::cout, "MOCHA design options for 15 fps AlexNet");

  // What the same default silicon does without MOCHA's flexibility.
  const baseline::NextBest best = baseline::next_best(net);
  const core::RunReport mocha_default =
      core::make_mocha_accelerator().run(net);
  std::cout << "\nDefault 8x8 @200MHz comparison:\n"
            << "  mocha:    " << 1000.0 / mocha_default.runtime_ms()
            << " fps, " << mocha_default.total_energy_pj * 1e-9
            << " mJ/frame\n"
            << "  next best (" << baseline::strategy_name(best.strategy)
            << "): " << 1000.0 / best.report.runtime_ms() << " fps, "
            << best.report.total_energy_pj * 1e-9 << " mJ/frame\n";
  return 0;
}
