// Scenario: measurement-driven deployment.
//
// Assumed sparsity profiles are fine for design-space sweeps, but before
// committing a deployment you want the controller planning against the
// *measured* statistics of your actual data. This example:
//   1. runs LeNet-5 functionally on two different inputs (dense vs sparse),
//   2. calibrates per-layer stream statistics from each,
//   3. lets the morph controller re-plan for each data regime,
//   4. shows how the chosen codecs and the simulated cost differ,
//   5. exports both reports as JSON.
//
//   ./build/examples/calibrated_run
#include <iostream>

#include "core/accelerator.hpp"
#include "core/calibrate.hpp"
#include "core/report_json.hpp"
#include "util/table.hpp"

int main() {
  using namespace mocha;
  // A bandwidth-heavy feature extractor: wide maps, modest compute, so the
  // data statistics actually decide the plan.
  const nn::Network net =
      nn::make_synthetic("extractor", 64, 64, {32, 48, 64}, 3, true);
  const core::Accelerator acc = core::make_mocha_accelerator();

  util::Rng rng(31337);
  const auto weights = nn::random_weights(net, 0.3, rng);

  struct Scenario {
    const char* name;
    double input_sparsity;
  };
  util::Table table({"scenario", "measured in-sparsity", "GOPS", "GOPS/W",
                     "DRAM KiB", "conv1 codecs"});
  for (const Scenario& scenario :
       {Scenario{"dense sensor data", 0.02},
        Scenario{"sparse event data", 0.80}}) {
    const nn::ValueTensor input = nn::random_tensor(
        net.layers.front().input_shape(), scenario.input_sparsity, rng);

    // Measure, re-plan, re-simulate.
    const core::CalibrationResult calibration =
        core::calibrate(net, input, weights);
    const dataflow::NetworkPlan plan = acc.plan(net, calibration.stats);
    const core::RunReport report =
        acc.run_with_plan(net, plan, calibration.stats);

    std::ostringstream codecs;
    codecs << compress::codec_name(plan.layers[0].ifmap_codec) << "/"
           << compress::codec_name(plan.layers[0].kernel_codec) << "/"
           << compress::codec_name(plan.layers[0].ofmap_codec);
    table.row()
        .cell(scenario.name)
        .cell(calibration.stats[0].ifmap_sparsity, 2)
        .cell(report.throughput_gops())
        .cell(report.efficiency_gops_per_w())
        .cell(static_cast<double>(report.total_dram_bytes) / 1024.0, 1)
        .cell(codecs.str());

    // Machine-readable export for dashboards / regression tracking.
    std::cout << "JSON (" << scenario.name
              << "): " << core::report_to_json(report).substr(0, 120)
              << "...\n";
  }
  std::cout << "\n";
  table.print(std::cout, "conv stack planned against measured data statistics");
  std::cout << "\nThe controller adapts: sparse data earns zero-aware "
               "coding and zero-skipping; dense data doesn't pretend "
               "otherwise.\n";
  return 0;
}
