// Quickstart: plan and simulate AlexNet on MOCHA, compare with the
// next-best fixed-strategy baseline, and verify a small network's tiled
// execution against the reference kernels.
//
//   ./build/examples/quickstart
#include <iostream>

#include "baseline/baselines.hpp"
#include "core/accelerator.hpp"
#include "dataflow/executor.hpp"
#include "util/table.hpp"

int main() {
  using namespace mocha;

  // ---- 1. Simulate AlexNet on MOCHA --------------------------------------
  const nn::Network alexnet = nn::make_alexnet();
  const core::Accelerator mocha_acc = core::make_mocha_accelerator();
  const core::RunReport mocha_run = mocha_acc.run(alexnet);

  // ---- 2. The paper's comparator: best fixed-strategy baseline -----------
  const baseline::NextBest best = baseline::next_best(alexnet);

  util::Table table({"accelerator", "cycles", "GOPS", "GOPS/W", "DRAM MiB",
                     "peak SRAM KiB"});
  for (const core::RunReport* run : {&mocha_run, &best.report}) {
    table.row()
        .cell(run->accelerator)
        .cell(static_cast<long long>(run->total_cycles))
        .cell(run->throughput_gops())
        .cell(run->efficiency_gops_per_w())
        .cell(static_cast<double>(run->total_dram_bytes) / (1024.0 * 1024.0))
        .cell(static_cast<double>(run->peak_sram_bytes) / 1024.0);
  }
  table.print(std::cout, "AlexNet: MOCHA vs next-best fixed accelerator (" +
                             std::string(baseline::strategy_name(best.strategy)) +
                             ")");

  std::cout << "\nMOCHA speedup:    "
            << static_cast<double>(best.report.total_cycles) /
                   static_cast<double>(mocha_run.total_cycles)
            << "x\nMOCHA efficiency: "
            << mocha_run.efficiency_gops_per_w() /
                   best.report.efficiency_gops_per_w()
            << "x\n\n";

  // ---- 3. Functional verification on LeNet-5 -----------------------------
  // The same plan the simulator timed is executed on real tensors and
  // compared element-exact against the naive reference kernels.
  const nn::Network lenet = nn::make_lenet5();
  util::Rng rng(42);
  const nn::ValueTensor input =
      nn::random_tensor(lenet.layers.front().input_shape(), 0.1, rng);
  const auto weights = nn::random_weights(lenet, 0.3, rng);

  const auto stats = core::assumed_stats(lenet, nn::SparsityProfile{});
  const dataflow::NetworkPlan plan = mocha_acc.plan(lenet, stats);
  const nn::Quant quant;
  const auto functional =
      dataflow::run_functional(lenet, plan, input, weights, {quant, true});
  const auto reference = nn::run_network_ref(lenet, input, weights, quant);

  bool all_match = true;
  for (std::size_t i = 0; i < lenet.layers.size(); ++i) {
    if (!(functional.outputs[i] == reference[i])) {
      all_match = false;
      std::cout << "MISMATCH at layer " << lenet.layers[i].name << "\n";
    }
  }
  std::cout << (all_match
                    ? "LeNet-5 tiled/fused execution matches the reference "
                      "exactly.\n"
                    : "LeNet-5 verification FAILED.\n");
  return all_match ? 0 : 1;
}
