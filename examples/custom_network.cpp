// Scenario: bringing your own network.
//
// Defines a custom CNN layer by layer, validates it, runs it on MOCHA with
// a custom sparsity profile, and verifies the planned execution bit-exactly
// against the reference kernels on real data — the full user workflow for a
// network the library does not ship.
//
//   ./build/examples/custom_network
#include <iostream>

#include "core/accelerator.hpp"
#include "dataflow/executor.hpp"
#include "util/table.hpp"

int main() {
  using namespace mocha;

  // A keyword-spotting-style audio CNN over 64x40 spectrogram patches.
  nn::Network net;
  net.name = "kws";
  net.layers = {
      nn::conv_layer("conv1", 1, 64, 40, 16, 3, 1, 1),
      nn::pool_layer("pool1", 16, 64, 40, 2, 2),
      nn::conv_layer("conv2", 16, 32, 20, 32, 3, 1, 1),
      nn::pool_layer("pool2", 32, 32, 20, 2, 2),
      nn::conv_layer("conv3", 32, 16, 10, 48, 3, 1, 1),
      nn::fc_layer("fc1", 48 * 16 * 10, 128),
      nn::fc_layer("fc2", 128, 12, /*relu=*/false),
  };
  net.validate();

  // Audio features are denser than vision activations; say so.
  nn::SparsityProfile profile;
  profile.input_sparsity = 0.02;
  profile.first_activation_sparsity = 0.30;
  profile.last_activation_sparsity = 0.55;

  const core::Accelerator acc = core::make_mocha_accelerator();
  const core::RunReport report = acc.run(net, profile);

  util::Table table({"group", "plan", "cycles", "GOPS", "uJ"});
  for (const core::GroupReport& group : report.groups) {
    table.row()
        .cell(group.label)
        .cell(group.plan_summary)
        .cell(static_cast<long long>(group.cycles))
        .cell(group.throughput_gops(report.clock_ghz))
        .cell(group.energy.total_pj() / 1e6);
  }
  table.print(std::cout, "custom network '" + net.name + "' on MOCHA");
  std::cout << "\ntotal: " << report.runtime_ms() << " ms/inference, "
            << report.total_energy_pj * 1e-6 << " uJ, peak scratchpad "
            << static_cast<double>(report.peak_sram_bytes) / 1024.0
            << " KiB (sram_ok=" << (report.sram_ok ? "yes" : "no") << ")\n";

  // Verify the controller's plan computes the right answer on real data.
  util::Rng rng(99);
  const nn::ValueTensor input =
      nn::random_tensor(net.layers.front().input_shape(), 0.02, rng);
  const auto weights = nn::random_weights(net, 0.25, rng);
  const auto stats = core::assumed_stats(net, profile);
  const auto plan = acc.plan(net, stats);
  const nn::Quant quant;
  const auto functional =
      dataflow::run_functional(net, plan, input, weights, {quant, true});
  const auto reference = nn::run_network_ref(net, input, weights, quant);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    if (!(functional.outputs[i] == reference[i])) {
      std::cout << "MISMATCH at " << net.layers[i].name << "\n";
      return 1;
    }
  }
  std::cout << "functional verification: all " << net.layers.size()
            << " layers match the reference exactly.\n";
  return 0;
}
