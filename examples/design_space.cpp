// Scenario: architecture design-space exploration.
//
// Uses the analytical cost model directly (no full simulation) to scan a
// grid of tile shapes / loop orders / codecs for one layer, then shows the
// morph controller arriving at (or beating) the grid's best point — the
// workflow an architect uses to sanity-check the controller's intelligence.
//
//   ./build/examples/design_space
#include <algorithm>
#include <iostream>

#include "core/accelerator.hpp"
#include "core/morph.hpp"
#include "dataflow/cost.hpp"
#include "util/table.hpp"

int main() {
  using namespace mocha;
  // AlexNet conv2-like layer: the classic tiling case study.
  const nn::Network net = nn::make_single_conv(96, 27, 27, 256, 5, 1, 2);
  const auto config = fabric::mocha_default_config();
  const auto tech = model::default_tech();
  const std::vector<dataflow::LayerStreamStats> stats = {{0.45, 0.2, 0.55}};

  struct Point {
    dataflow::LayerPlan plan;
    dataflow::CostEstimate est;
  };
  std::vector<Point> points;
  for (nn::Index th : {27, 14, 7, 4}) {
    for (nn::Index tm : {256, 64, 16, 8}) {
      for (auto order : {dataflow::LoopOrder::WeightStationary,
                         dataflow::LoopOrder::InputStationary}) {
        for (auto codec :
             {compress::CodecKind::None, compress::CodecKind::Zrle}) {
          dataflow::LayerPlan lp;
          lp.tile = {th, th, order == dataflow::LoopOrder::WeightStationary
                                 ? 96
                                 : 32,
                     tm};
          lp.order = order;
          lp.ifmap_codec = codec;
          lp.kernel_codec = codec == compress::CodecKind::None
                                ? compress::CodecKind::None
                                : compress::CodecKind::Bitmask;
          dataflow::NetworkPlan plan;
          plan.layers = {lp};
          const auto est = dataflow::estimate_group_cost(
              net, plan, {0, 0}, config, stats, tech);
          if (!est.fits(config)) continue;
          points.push_back({lp, est});
        }
      }
    }
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.est.edp() < b.est.edp();
  });

  util::Table table({"rank", "plan", "Mcycles", "uJ", "DRAM KiB", "EDP norm"});
  const double best_edp = points.front().est.edp();
  for (std::size_t i = 0; i < std::min<std::size_t>(8, points.size()); ++i) {
    table.row()
        .cell(static_cast<long long>(i + 1))
        .cell(points[i].plan.summary())
        .cell(points[i].est.cycles / 1e6)
        .cell(points[i].est.energy_pj / 1e6)
        .cell(static_cast<double>(points[i].est.dram_bytes) / 1024.0, 1)
        .cell(points[i].est.edp() / best_edp, 3);
  }
  table.print(std::cout,
              "Manual grid scan, AlexNet-conv2-like layer (fitting points: " +
                  std::to_string(points.size()) + ")");

  // The controller, free to search the full space.
  const core::MorphController controller(tech, core::MorphOptions{});
  const auto plan = controller.plan(net, config, stats);
  const auto est = dataflow::estimate_group_cost(net, plan, {0, 0}, config,
                                                 stats, tech);
  std::cout << "\nmorph controller chose: " << plan.layers[0].summary()
            << "\n  EDP vs grid best: " << est.edp() / best_edp
            << "x (<= 1.0 means it matched or beat the manual scan)\n";
  return 0;
}
