# Empty dependencies file for fig_batch.
# This may be replaced when dependencies are built.
