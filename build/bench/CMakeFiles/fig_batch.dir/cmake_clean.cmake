file(REMOVE_RECURSE
  "CMakeFiles/fig_batch.dir/fig_batch.cpp.o"
  "CMakeFiles/fig_batch.dir/fig_batch.cpp.o.d"
  "fig_batch"
  "fig_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
