# Empty compiler generated dependencies file for fig_storage.
# This may be replaced when dependencies are built.
