file(REMOVE_RECURSE
  "CMakeFiles/fig_storage.dir/fig_storage.cpp.o"
  "CMakeFiles/fig_storage.dir/fig_storage.cpp.o.d"
  "fig_storage"
  "fig_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
