file(REMOVE_RECURSE
  "CMakeFiles/table_workloads.dir/table_workloads.cpp.o"
  "CMakeFiles/table_workloads.dir/table_workloads.cpp.o.d"
  "table_workloads"
  "table_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
