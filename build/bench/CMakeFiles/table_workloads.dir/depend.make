# Empty dependencies file for table_workloads.
# This may be replaced when dependencies are built.
