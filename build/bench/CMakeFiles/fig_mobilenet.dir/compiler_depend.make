# Empty compiler generated dependencies file for fig_mobilenet.
# This may be replaced when dependencies are built.
