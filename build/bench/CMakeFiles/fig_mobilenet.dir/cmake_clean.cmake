file(REMOVE_RECURSE
  "CMakeFiles/fig_mobilenet.dir/fig_mobilenet.cpp.o"
  "CMakeFiles/fig_mobilenet.dir/fig_mobilenet.cpp.o.d"
  "fig_mobilenet"
  "fig_mobilenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
