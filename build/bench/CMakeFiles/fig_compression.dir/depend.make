# Empty dependencies file for fig_compression.
# This may be replaced when dependencies are built.
