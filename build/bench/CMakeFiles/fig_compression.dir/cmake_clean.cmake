file(REMOVE_RECURSE
  "CMakeFiles/fig_compression.dir/fig_compression.cpp.o"
  "CMakeFiles/fig_compression.dir/fig_compression.cpp.o.d"
  "fig_compression"
  "fig_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
