file(REMOVE_RECURSE
  "CMakeFiles/table_morph_decisions.dir/table_morph_decisions.cpp.o"
  "CMakeFiles/table_morph_decisions.dir/table_morph_decisions.cpp.o.d"
  "table_morph_decisions"
  "table_morph_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_morph_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
