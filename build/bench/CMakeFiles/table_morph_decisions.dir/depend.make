# Empty dependencies file for table_morph_decisions.
# This may be replaced when dependencies are built.
