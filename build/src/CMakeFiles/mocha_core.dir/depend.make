# Empty dependencies file for mocha_core.
# This may be replaced when dependencies are built.
