
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accelerator.cpp" "src/CMakeFiles/mocha_core.dir/core/accelerator.cpp.o" "gcc" "src/CMakeFiles/mocha_core.dir/core/accelerator.cpp.o.d"
  "/root/repo/src/core/calibrate.cpp" "src/CMakeFiles/mocha_core.dir/core/calibrate.cpp.o" "gcc" "src/CMakeFiles/mocha_core.dir/core/calibrate.cpp.o.d"
  "/root/repo/src/core/morph.cpp" "src/CMakeFiles/mocha_core.dir/core/morph.cpp.o" "gcc" "src/CMakeFiles/mocha_core.dir/core/morph.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/CMakeFiles/mocha_core.dir/core/report_json.cpp.o" "gcc" "src/CMakeFiles/mocha_core.dir/core/report_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
