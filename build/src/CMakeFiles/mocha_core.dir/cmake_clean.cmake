file(REMOVE_RECURSE
  "CMakeFiles/mocha_core.dir/core/accelerator.cpp.o"
  "CMakeFiles/mocha_core.dir/core/accelerator.cpp.o.d"
  "CMakeFiles/mocha_core.dir/core/calibrate.cpp.o"
  "CMakeFiles/mocha_core.dir/core/calibrate.cpp.o.d"
  "CMakeFiles/mocha_core.dir/core/morph.cpp.o"
  "CMakeFiles/mocha_core.dir/core/morph.cpp.o.d"
  "CMakeFiles/mocha_core.dir/core/report_json.cpp.o"
  "CMakeFiles/mocha_core.dir/core/report_json.cpp.o.d"
  "libmocha_core.a"
  "libmocha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
