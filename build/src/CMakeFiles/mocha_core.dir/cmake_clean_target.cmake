file(REMOVE_RECURSE
  "libmocha_core.a"
)
