file(REMOVE_RECURSE
  "CMakeFiles/mocha_sim.dir/sim/dot.cpp.o"
  "CMakeFiles/mocha_sim.dir/sim/dot.cpp.o.d"
  "CMakeFiles/mocha_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/mocha_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/mocha_sim.dir/sim/task.cpp.o"
  "CMakeFiles/mocha_sim.dir/sim/task.cpp.o.d"
  "libmocha_sim.a"
  "libmocha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
