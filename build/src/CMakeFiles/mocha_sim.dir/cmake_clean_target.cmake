file(REMOVE_RECURSE
  "libmocha_sim.a"
)
