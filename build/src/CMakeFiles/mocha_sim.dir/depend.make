# Empty dependencies file for mocha_sim.
# This may be replaced when dependencies are built.
