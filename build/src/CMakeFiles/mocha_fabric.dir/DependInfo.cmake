
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/config.cpp" "src/CMakeFiles/mocha_fabric.dir/fabric/config.cpp.o" "gcc" "src/CMakeFiles/mocha_fabric.dir/fabric/config.cpp.o.d"
  "/root/repo/src/fabric/pe_array.cpp" "src/CMakeFiles/mocha_fabric.dir/fabric/pe_array.cpp.o" "gcc" "src/CMakeFiles/mocha_fabric.dir/fabric/pe_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
