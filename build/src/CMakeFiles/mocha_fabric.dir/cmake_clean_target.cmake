file(REMOVE_RECURSE
  "libmocha_fabric.a"
)
