# Empty compiler generated dependencies file for mocha_fabric.
# This may be replaced when dependencies are built.
