file(REMOVE_RECURSE
  "CMakeFiles/mocha_fabric.dir/fabric/config.cpp.o"
  "CMakeFiles/mocha_fabric.dir/fabric/config.cpp.o.d"
  "CMakeFiles/mocha_fabric.dir/fabric/pe_array.cpp.o"
  "CMakeFiles/mocha_fabric.dir/fabric/pe_array.cpp.o.d"
  "libmocha_fabric.a"
  "libmocha_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
