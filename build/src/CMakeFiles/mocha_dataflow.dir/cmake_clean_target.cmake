file(REMOVE_RECURSE
  "libmocha_dataflow.a"
)
