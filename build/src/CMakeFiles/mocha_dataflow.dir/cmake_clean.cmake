file(REMOVE_RECURSE
  "CMakeFiles/mocha_dataflow.dir/dataflow/cost.cpp.o"
  "CMakeFiles/mocha_dataflow.dir/dataflow/cost.cpp.o.d"
  "CMakeFiles/mocha_dataflow.dir/dataflow/executor.cpp.o"
  "CMakeFiles/mocha_dataflow.dir/dataflow/executor.cpp.o.d"
  "CMakeFiles/mocha_dataflow.dir/dataflow/plan.cpp.o"
  "CMakeFiles/mocha_dataflow.dir/dataflow/plan.cpp.o.d"
  "CMakeFiles/mocha_dataflow.dir/dataflow/schedule.cpp.o"
  "CMakeFiles/mocha_dataflow.dir/dataflow/schedule.cpp.o.d"
  "CMakeFiles/mocha_dataflow.dir/dataflow/tiling.cpp.o"
  "CMakeFiles/mocha_dataflow.dir/dataflow/tiling.cpp.o.d"
  "libmocha_dataflow.a"
  "libmocha_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
