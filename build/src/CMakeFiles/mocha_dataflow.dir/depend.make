# Empty dependencies file for mocha_dataflow.
# This may be replaced when dependencies are built.
