# Empty dependencies file for mocha_model.
# This may be replaced when dependencies are built.
