file(REMOVE_RECURSE
  "CMakeFiles/mocha_model.dir/model/area.cpp.o"
  "CMakeFiles/mocha_model.dir/model/area.cpp.o.d"
  "CMakeFiles/mocha_model.dir/model/energy.cpp.o"
  "CMakeFiles/mocha_model.dir/model/energy.cpp.o.d"
  "libmocha_model.a"
  "libmocha_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
