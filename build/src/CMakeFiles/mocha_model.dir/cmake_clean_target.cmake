file(REMOVE_RECURSE
  "libmocha_model.a"
)
