
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/area.cpp" "src/CMakeFiles/mocha_model.dir/model/area.cpp.o" "gcc" "src/CMakeFiles/mocha_model.dir/model/area.cpp.o.d"
  "/root/repo/src/model/energy.cpp" "src/CMakeFiles/mocha_model.dir/model/energy.cpp.o" "gcc" "src/CMakeFiles/mocha_model.dir/model/energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
