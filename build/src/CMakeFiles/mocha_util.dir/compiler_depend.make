# Empty compiler generated dependencies file for mocha_util.
# This may be replaced when dependencies are built.
