file(REMOVE_RECURSE
  "CMakeFiles/mocha_util.dir/util/units.cpp.o"
  "CMakeFiles/mocha_util.dir/util/units.cpp.o.d"
  "libmocha_util.a"
  "libmocha_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
