file(REMOVE_RECURSE
  "libmocha_util.a"
)
