# Empty dependencies file for mocha_baseline.
# This may be replaced when dependencies are built.
