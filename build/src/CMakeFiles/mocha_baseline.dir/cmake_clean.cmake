file(REMOVE_RECURSE
  "CMakeFiles/mocha_baseline.dir/baseline/baselines.cpp.o"
  "CMakeFiles/mocha_baseline.dir/baseline/baselines.cpp.o.d"
  "libmocha_baseline.a"
  "libmocha_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
