file(REMOVE_RECURSE
  "libmocha_baseline.a"
)
