# Empty dependencies file for mocha_compress.
# This may be replaced when dependencies are built.
