
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitmask.cpp" "src/CMakeFiles/mocha_compress.dir/compress/bitmask.cpp.o" "gcc" "src/CMakeFiles/mocha_compress.dir/compress/bitmask.cpp.o.d"
  "/root/repo/src/compress/codec.cpp" "src/CMakeFiles/mocha_compress.dir/compress/codec.cpp.o" "gcc" "src/CMakeFiles/mocha_compress.dir/compress/codec.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/CMakeFiles/mocha_compress.dir/compress/huffman.cpp.o" "gcc" "src/CMakeFiles/mocha_compress.dir/compress/huffman.cpp.o.d"
  "/root/repo/src/compress/zrle.cpp" "src/CMakeFiles/mocha_compress.dir/compress/zrle.cpp.o" "gcc" "src/CMakeFiles/mocha_compress.dir/compress/zrle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
