file(REMOVE_RECURSE
  "CMakeFiles/mocha_compress.dir/compress/bitmask.cpp.o"
  "CMakeFiles/mocha_compress.dir/compress/bitmask.cpp.o.d"
  "CMakeFiles/mocha_compress.dir/compress/codec.cpp.o"
  "CMakeFiles/mocha_compress.dir/compress/codec.cpp.o.d"
  "CMakeFiles/mocha_compress.dir/compress/huffman.cpp.o"
  "CMakeFiles/mocha_compress.dir/compress/huffman.cpp.o.d"
  "CMakeFiles/mocha_compress.dir/compress/zrle.cpp.o"
  "CMakeFiles/mocha_compress.dir/compress/zrle.cpp.o.d"
  "libmocha_compress.a"
  "libmocha_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
