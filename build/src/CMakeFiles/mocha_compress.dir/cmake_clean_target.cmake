file(REMOVE_RECURSE
  "libmocha_compress.a"
)
