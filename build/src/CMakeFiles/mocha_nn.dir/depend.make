# Empty dependencies file for mocha_nn.
# This may be replaced when dependencies are built.
