file(REMOVE_RECURSE
  "libmocha_nn.a"
)
