file(REMOVE_RECURSE
  "CMakeFiles/mocha_nn.dir/nn/generate.cpp.o"
  "CMakeFiles/mocha_nn.dir/nn/generate.cpp.o.d"
  "CMakeFiles/mocha_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/mocha_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/mocha_nn.dir/nn/network.cpp.o"
  "CMakeFiles/mocha_nn.dir/nn/network.cpp.o.d"
  "CMakeFiles/mocha_nn.dir/nn/reference.cpp.o"
  "CMakeFiles/mocha_nn.dir/nn/reference.cpp.o.d"
  "libmocha_nn.a"
  "libmocha_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
