
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/generate.cpp" "src/CMakeFiles/mocha_nn.dir/nn/generate.cpp.o" "gcc" "src/CMakeFiles/mocha_nn.dir/nn/generate.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/mocha_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/mocha_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/mocha_nn.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/mocha_nn.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/CMakeFiles/mocha_nn.dir/nn/reference.cpp.o" "gcc" "src/CMakeFiles/mocha_nn.dir/nn/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
