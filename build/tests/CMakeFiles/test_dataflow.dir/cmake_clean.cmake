file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow.dir/dataflow/batch_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/batch_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/cost_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/cost_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/depthwise_schedule_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/depthwise_schedule_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/executor_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/executor_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/plan_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/plan_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/schedule_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/schedule_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/streams_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/streams_test.cpp.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/tiling_test.cpp.o"
  "CMakeFiles/test_dataflow.dir/dataflow/tiling_test.cpp.o.d"
  "test_dataflow"
  "test_dataflow.pdb"
  "test_dataflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
