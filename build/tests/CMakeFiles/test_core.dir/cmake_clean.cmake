file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/accelerator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/accelerator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/baseline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/baseline_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/batch_planning_test.cpp.o"
  "CMakeFiles/test_core.dir/core/batch_planning_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/calibrate_test.cpp.o"
  "CMakeFiles/test_core.dir/core/calibrate_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/morph_test.cpp.o"
  "CMakeFiles/test_core.dir/core/morph_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_json_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_json_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
