file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/depthwise_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/depthwise_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/generate_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/generate_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/layer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/layer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/reference_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/reference_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
