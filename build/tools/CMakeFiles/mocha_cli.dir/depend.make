# Empty dependencies file for mocha_cli.
# This may be replaced when dependencies are built.
