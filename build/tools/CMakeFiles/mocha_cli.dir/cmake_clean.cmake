file(REMOVE_RECURSE
  "CMakeFiles/mocha_cli.dir/mocha_sim.cpp.o"
  "CMakeFiles/mocha_cli.dir/mocha_sim.cpp.o.d"
  "mocha_sim"
  "mocha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocha_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
