file(REMOVE_RECURSE
  "CMakeFiles/calibrated_run.dir/calibrated_run.cpp.o"
  "CMakeFiles/calibrated_run.dir/calibrated_run.cpp.o.d"
  "calibrated_run"
  "calibrated_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrated_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
