
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/calibrated_run.cpp" "examples/CMakeFiles/calibrated_run.dir/calibrated_run.cpp.o" "gcc" "examples/CMakeFiles/calibrated_run.dir/calibrated_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mocha_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mocha_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
