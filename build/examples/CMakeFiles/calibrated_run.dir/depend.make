# Empty dependencies file for calibrated_run.
# This may be replaced when dependencies are built.
