# Empty dependencies file for embedded_vision.
# This may be replaced when dependencies are built.
