file(REMOVE_RECURSE
  "CMakeFiles/embedded_vision.dir/embedded_vision.cpp.o"
  "CMakeFiles/embedded_vision.dir/embedded_vision.cpp.o.d"
  "embedded_vision"
  "embedded_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
