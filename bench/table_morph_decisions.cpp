// E8 — morph-decision table: what the controller actually chose per layer
// (the "intelligence to automatically interleave and cascade" made visible),
// plus the decision trace: how many candidates were scored and which
// finalists lost to the winner.
#include "common.hpp"

#include "core/morph.hpp"

int main() {
  using namespace mocha;
  const core::MorphController controller(model::default_tech(),
                                         core::MorphOptions{});
  for (const nn::Network& net : nn::benchmark_networks()) {
    const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
    core::PlanTrace trace;
    const dataflow::NetworkPlan plan = controller.plan_traced(
        net, fabric::mocha_default_config(), stats, 1, &trace);
    util::Table table({"layer", "fused with", "tile HxW", "tc/tm", "order",
                       "par IxS", "ifmap", "kernel", "ofmap"});
    const auto groups = plan.fusion_groups();
    for (const auto& group : groups) {
      for (std::size_t l = group.first; l <= group.last; ++l) {
        const dataflow::LayerPlan& lp = plan.layers[l];
        std::string fused = "-";
        if (group.size() > 1) {
          fused = net.layers[group.first].name;
          for (std::size_t k = group.first + 1; k <= group.last; ++k) {
            fused += "+" + net.layers[k].name;
          }
        }
        std::ostringstream tile, chans, par;
        tile << lp.tile.th << "x" << lp.tile.tw;
        chans << lp.tile.tc << "/" << lp.tile.tm;
        par << lp.inter_groups << "x" << lp.intra_groups;
        table.row()
            .cell(net.layers[l].name)
            .cell(fused)
            .cell(tile.str())
            .cell(chans.str())
            .cell(dataflow::loop_order_name(lp.order))
            .cell(par.str())
            .cell(compress::codec_name(lp.ifmap_codec))
            .cell(compress::codec_name(lp.kernel_codec))
            .cell(compress::codec_name(lp.ofmap_codec));
      }
    }
    bench::emit(table, "E8: morph controller decisions, " + net.name);

    // Decision trace: search breadth and the finalists' measured scores.
    util::Table trace_table({"group", "analytical cands", "finalist",
                             "Mcycles", "uJ", "peak KiB", "chosen"});
    for (const core::GroupTrace& group : trace) {
      for (const auto& finalist : group.finalists) {
        trace_table.row()
            .cell(net.layers[group.first_layer].name +
                  (group.last_layer > group.first_layer ? "+" : ""))
            .cell(static_cast<long long>(group.analytical_candidates))
            .cell(finalist.plan_summary)
            .cell(finalist.cycles / 1e6, 3)
            .cell(finalist.energy_pj / 1e6, 1)
            .cell(static_cast<double>(finalist.peak_sram_bytes) / 1024.0, 1)
            .cell(finalist.chosen ? "  <== " : "");
      }
    }
    bench::emit(trace_table, "E8b: decision trace, " + net.name);
  }
  return 0;
}
