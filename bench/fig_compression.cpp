// E6 — compression behaviour: codec compression ratio and effective DRAM
// bandwidth amplification across the sparsity range, on real encoded
// streams (not the analytical model).
#include "common.hpp"

#include "compress/codec.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"

int main() {
  using namespace mocha;
  util::Rng rng(2017);
  const std::size_t n = 1 << 18;
  const sim::DramModel dram(fabric::mocha_default_config());

  util::Table table({"sparsity %", "zrle ratio", "bitmask ratio",
                     "huffman ratio", "zrle BW amp", "estimate err %"});
  for (int pct = 0; pct <= 95; pct += 5) {
    const double sparsity = pct / 100.0;
    std::vector<nn::Value> stream(n);
    for (nn::Value& v : stream) {
      if (rng.bernoulli(sparsity)) {
        v = 0;
      } else {
        v = static_cast<nn::Value>(rng.uniform_int(-96, 96));
        if (v == 0) v = 1;
      }
    }
    const auto raw_bytes = static_cast<std::int64_t>(n * sizeof(nn::Value));
    double ratios[3] = {0, 0, 0};
    std::int64_t zrle_bytes = 0;
    const compress::CodecKind kinds[] = {compress::CodecKind::Zrle,
                                         compress::CodecKind::Bitmask,
                                         compress::CodecKind::Huffman};
    for (int k = 0; k < 3; ++k) {
      const auto codec = compress::make_codec(kinds[k]);
      const auto coded =
          static_cast<std::int64_t>(codec->encode(stream).size());
      ratios[k] = compress::compression_ratio(raw_bytes, coded);
      if (k == 0) zrle_bytes = coded;
    }
    // Bandwidth amplification: raw-stream cycles / coded-stream cycles.
    const double bw_amp =
        static_cast<double>(dram.transfer_cycles(raw_bytes)) /
        static_cast<double>(dram.transfer_cycles(zrle_bytes));
    const auto estimate = compress::estimate_coded_bytes(
        compress::CodecKind::Zrle, static_cast<std::int64_t>(n), sparsity);
    const double err =
        (static_cast<double>(estimate) / static_cast<double>(zrle_bytes) -
         1.0) *
        100.0;
    table.row()
        .cell(static_cast<long long>(pct))
        .cell(ratios[0])
        .cell(ratios[1])
        .cell(ratios[2])
        .cell(bw_amp)
        .cell(err, 1);
  }
  bench::emit(table, "E6: codec ratio & bandwidth vs activation sparsity");
  return 0;
}
