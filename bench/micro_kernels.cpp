// E10c — google-benchmark microbenchmarks of the packed compute kernels
// (nn/kernels.hpp): the padding-free interior fast path vs the checked
// border ring, at dense and 90%-sparse inputs, plus the FC dot-product
// kernels — each run once per ISA the host can dispatch to (scalar always,
// then avx2/neon when supported). The per-MAC gap between
// conv_interior/scalar and conv_interior/<vector-isa> is the SIMD win the
// dispatch layer buys without MOCHA_NATIVE.
//
// Before benchmarking, main() runs every vector ISA against the scalar
// oracle on all four workloads and aborts on any output mismatch, so a
// miscompiled or subtly-wrong SIMD variant fails this binary loudly
// instead of publishing fast-but-wrong numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/generate.hpp"
#include "nn/kernels.hpp"
#include "nn/layer.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"

namespace {

using mocha::nn::Index;
using mocha::nn::LayerSpec;
using mocha::nn::Quant;
using mocha::nn::ValueTensor;
namespace kernels = mocha::nn::kernels;
namespace util = mocha::util;

struct ConvSetup {
  LayerSpec layer;
  ValueTensor input;
  ValueTensor weights;
  ValueTensor out;
};

ConvSetup make_conv(double input_sparsity, Index pad) {
  ConvSetup setup;
  setup.layer =
      mocha::nn::conv_layer("bench_conv", 32, 56, 56, 32, 3, 1, pad);
  mocha::util::Rng rng(29);
  setup.input = mocha::nn::random_tensor(setup.layer.input_shape(),
                                         input_sparsity, rng);
  setup.weights =
      mocha::nn::random_tensor(setup.layer.weight_shape(), 0.25, rng, -8, 8);
  setup.out = ValueTensor(setup.layer.output_shape());
  return setup;
}

struct FcSetup {
  LayerSpec layer;
  ValueTensor input;
  ValueTensor weights;
  ValueTensor out;
};

FcSetup make_fc(double input_sparsity) {
  FcSetup setup;
  setup.layer = mocha::nn::fc_layer("bench_fc", 4096, 1024);
  mocha::util::Rng rng(31);
  setup.input = mocha::nn::random_tensor(setup.layer.input_shape(),
                                         input_sparsity, rng);
  setup.weights =
      mocha::nn::random_tensor(setup.layer.weight_shape(), 0.25, rng, -8, 8);
  setup.out = ValueTensor(setup.layer.output_shape());
  return setup;
}

/// Padding-free conv: every output position sits on the packed interior
/// path (raw row pointers, register-blocked accumulators).
void conv_interior(benchmark::State& state, util::KernelIsa isa,
                   double sparsity) {
  util::force_isa(isa);
  ConvSetup s = make_conv(sparsity, /*pad=*/0);
  const kernels::PaddedInput in =
      kernels::PaddedInput::full(s.input, s.layer.in_h, s.layer.in_w);
  for (auto _ : state) {
    kernels::run_layer_region(s.layer, in, s.weights, {0, s.layer.out_h()},
                              {0, s.layer.out_w()}, Quant{}, &s.out, 0, 0);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.layer.macs());
}

/// Top output row of a padded conv: every position's receptive field
/// touches the zero-padding ring, so the whole region runs on the checked
/// border path — the per-MAC gap to conv_interior is the price of the
/// bounds/padding checks the interior split removes. The dispatch layer
/// does not vectorize this path, so it is also the per-ISA control.
void conv_border(benchmark::State& state, util::KernelIsa isa,
                 double sparsity) {
  util::force_isa(isa);
  ConvSetup s = make_conv(sparsity, /*pad=*/1);
  const kernels::PaddedInput in =
      kernels::PaddedInput::full(s.input, s.layer.in_h, s.layer.in_w);
  ValueTensor row_out({1, s.layer.out_channels(), 1, s.layer.out_w()});
  for (auto _ : state) {
    kernels::run_layer_region(s.layer, in, s.weights, {0, 1},
                              {0, s.layer.out_w()}, Quant{}, &row_out, 0, 0);
    benchmark::DoNotOptimize(row_out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.layer.macs() /
                          s.layer.out_h());
}

/// Fully connected layer: dense input takes fc_dot_dense, 90%-sparse input
/// drops under the density threshold and takes the nonzero-gather path.
void fc_full(benchmark::State& state, util::KernelIsa isa, double sparsity) {
  util::force_isa(isa);
  FcSetup s = make_fc(sparsity);
  for (auto _ : state) {
    kernels::fc_region(s.layer, s.input.data(), s.weights, 0,
                       s.layer.out_channels(), Quant{}, &s.out);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.layer.macs());
}

/// One forced-ISA pass over all four workloads; returns the concatenated
/// outputs so main() can compare vector ISAs against scalar byte-for-byte.
std::vector<ValueTensor> run_all_once(util::KernelIsa isa) {
  util::force_isa(isa);
  std::vector<ValueTensor> outs;
  for (double sparsity : {0.0, 0.9}) {
    ConvSetup c = make_conv(sparsity, /*pad=*/1);
    const kernels::PaddedInput in =
        kernels::PaddedInput::full(c.input, c.layer.in_h, c.layer.in_w);
    kernels::run_layer_region(c.layer, in, c.weights, {0, c.layer.out_h()},
                              {0, c.layer.out_w()}, Quant{}, &c.out, 0, 0);
    outs.push_back(std::move(c.out));
    FcSetup f = make_fc(sparsity);
    kernels::fc_region(f.layer, f.input.data(), f.weights, 0,
                       f.layer.out_channels(), Quant{}, &f.out);
    outs.push_back(std::move(f.out));
  }
  return outs;
}

/// Every dispatched ISA must reproduce the scalar oracle exactly; a
/// mismatch means the benchmark numbers would be meaningless, so fail the
/// whole binary.
bool self_check() {
  const std::vector<ValueTensor> oracle = run_all_once(util::KernelIsa::Scalar);
  bool ok = true;
  for (util::KernelIsa isa : util::supported_isas()) {
    if (isa == util::KernelIsa::Scalar) continue;
    const std::vector<ValueTensor> got = run_all_once(isa);
    for (std::size_t w = 0; w < oracle.size(); ++w) {
      if (std::memcmp(got[w].data(), oracle[w].data(),
                      static_cast<std::size_t>(oracle[w].size()) *
                          sizeof(mocha::nn::Value)) != 0) {
        std::fprintf(stderr,
                     "micro_kernels: self-check FAILED: %s workload %zu "
                     "diverges from scalar\n",
                     util::isa_name(isa), w);
        ok = false;
      }
    }
  }
  return ok;
}

void register_benches() {
  for (util::KernelIsa isa : util::supported_isas()) {
    const std::string tag = util::isa_name(isa);
    for (double sparsity : {0.0, 0.9}) {
      const std::string density = sparsity == 0 ? "dense" : "sparse90";
      benchmark::RegisterBenchmark(
          ("conv_interior/" + tag + "/" + density).c_str(),
          [isa, sparsity](benchmark::State& st) {
            conv_interior(st, isa, sparsity);
          });
      benchmark::RegisterBenchmark(
          ("conv_border/" + tag + "/" + density).c_str(),
          [isa, sparsity](benchmark::State& st) {
            conv_border(st, isa, sparsity);
          });
      benchmark::RegisterBenchmark(("fc/" + tag + "/" + density).c_str(),
                                   [isa, sparsity](benchmark::State& st) {
                                     fc_full(st, isa, sparsity);
                                   });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!self_check()) return 1;
  util::force_isa(util::best_supported_isa());
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
