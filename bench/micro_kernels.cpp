// E10c — google-benchmark microbenchmarks of the packed compute kernels
// (nn/kernels.hpp): the padding-free interior fast path vs the checked
// border ring, at dense and 90%-sparse inputs (the latter exercises the
// per-row nonzero metadata that lets whole kernel rows be skipped).
#include <benchmark/benchmark.h>

#include "nn/generate.hpp"
#include "nn/kernels.hpp"
#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace {

using mocha::nn::Index;
using mocha::nn::LayerSpec;
using mocha::nn::Quant;
using mocha::nn::ValueTensor;
namespace kernels = mocha::nn::kernels;

struct ConvSetup {
  LayerSpec layer;
  ValueTensor input;
  ValueTensor weights;
  ValueTensor out;
};

ConvSetup make_conv(double input_sparsity, Index pad) {
  ConvSetup setup;
  setup.layer =
      mocha::nn::conv_layer("bench_conv", 32, 56, 56, 32, 3, 1, pad);
  mocha::util::Rng rng(29);
  setup.input = mocha::nn::random_tensor(setup.layer.input_shape(),
                                         input_sparsity, rng);
  setup.weights =
      mocha::nn::random_tensor(setup.layer.weight_shape(), 0.25, rng, -8, 8);
  setup.out = ValueTensor(setup.layer.output_shape());
  return setup;
}

/// Padding-free conv: every output position sits on the packed interior
/// path (raw row pointers, register-blocked accumulators).
void BM_ConvInterior(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  ConvSetup s = make_conv(sparsity, /*pad=*/0);
  const kernels::PaddedInput in =
      kernels::PaddedInput::full(s.input, s.layer.in_h, s.layer.in_w);
  for (auto _ : state) {
    kernels::run_layer_region(s.layer, in, s.weights, {0, s.layer.out_h()},
                              {0, s.layer.out_w()}, Quant{}, &s.out, 0, 0);
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.layer.macs());
  state.SetLabel(sparsity == 0 ? "dense" : "sparse90");
}

/// Top output row of a padded conv: every position's receptive field
/// touches the zero-padding ring, so the whole region runs on the checked
/// border path — the per-MAC gap to BM_ConvInterior is the price of the
/// bounds/padding checks the interior split removes.
void BM_ConvBorder(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  ConvSetup s = make_conv(sparsity, /*pad=*/1);
  const kernels::PaddedInput in =
      kernels::PaddedInput::full(s.input, s.layer.in_h, s.layer.in_w);
  ValueTensor row_out({1, s.layer.out_channels(), 1, s.layer.out_w()});
  for (auto _ : state) {
    kernels::run_layer_region(s.layer, in, s.weights, {0, 1},
                              {0, s.layer.out_w()}, Quant{}, &row_out, 0, 0);
    benchmark::DoNotOptimize(row_out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.layer.macs() /
                          s.layer.out_h());
  state.SetLabel(sparsity == 0 ? "dense" : "sparse90");
}

BENCHMARK(BM_ConvInterior)->Arg(0)->Arg(90);
BENCHMARK(BM_ConvBorder)->Arg(0)->Arg(90);

}  // namespace

BENCHMARK_MAIN();
