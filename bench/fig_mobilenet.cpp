// E14 (extension) — generalization to depthwise-separable networks:
// MOCHA vs the fixed baselines on MobileNet-v1, per block type and total.
// Depthwise layers are bandwidth-bound (K^2 MACs per activation), so the
// morphable dataflow's compression and fusion matter even more than on the
// paper's AlexNet/VGG workloads.
#include "common.hpp"

int main() {
  using namespace mocha;
  const nn::Network net = nn::make_mobilenet_v1();
  const bench::Fleet fleet = bench::Fleet::make();
  const bench::FleetRuns runs = bench::run_fleet(fleet, net);

  // Aggregate by layer class.
  struct Bucket {
    std::int64_t macs = 0;
    sim::Cycle mocha_cycles = 0;
    sim::Cycle best_cycles = 0;
  };
  std::map<std::string, Bucket> buckets;
  const core::RunReport& best = runs.best_baseline(
      [](const core::RunReport& r) { return r.throughput_gops(); });
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    const char* kind = net.layers[l].kind == nn::LayerKind::DepthwiseConv
                           ? "depthwise"
                       : net.layers[l].kind == nn::LayerKind::Conv
                           ? "pointwise/conv"
                       : net.layers[l].kind == nn::LayerKind::Pool ? "pool"
                                                                   : "fc";
    const core::GroupReport* mg = runs.mocha.group_for_layer(l);
    const core::GroupReport* bg = best.group_for_layer(l);
    if (mg == nullptr || bg == nullptr) continue;
    Bucket& bucket = buckets[kind];
    bucket.macs += net.layers[l].macs();
    // Attribute group cycles proportionally by MACs when layers fused.
    const auto share = [&](const core::GroupReport& g) {
      return static_cast<sim::Cycle>(
          static_cast<double>(g.cycles) *
          static_cast<double>(net.layers[l].macs()) /
          static_cast<double>(std::max<std::int64_t>(1, g.dense_macs)));
    };
    bucket.mocha_cycles += share(*mg);
    bucket.best_cycles += share(*bg);
  }

  util::Table table({"layer class", "MMACs", "mocha Mcycles",
                     "nextbest Mcycles", "speedup"});
  for (const auto& [kind, bucket] : buckets) {
    table.row()
        .cell(kind)
        .cell(static_cast<double>(bucket.macs) / 1e6, 1)
        .cell(static_cast<double>(bucket.mocha_cycles) / 1e6, 2)
        .cell(static_cast<double>(bucket.best_cycles) / 1e6, 2)
        .cell(static_cast<double>(bucket.best_cycles) /
                  static_cast<double>(std::max<sim::Cycle>(1,
                                                           bucket.mocha_cycles)),
              2);
  }
  table.row()
      .cell("TOTAL")
      .cell(static_cast<double>(net.total_macs()) / 1e6, 1)
      .cell(static_cast<double>(runs.mocha.total_cycles) / 1e6, 2)
      .cell(static_cast<double>(best.total_cycles) / 1e6, 2)
      .cell(static_cast<double>(best.total_cycles) /
                static_cast<double>(runs.mocha.total_cycles),
            2);
  bench::emit(table, "E14: MobileNet-v1 by layer class");

  std::cout << "totals: mocha " << runs.mocha.throughput_gops() << " GOPS / "
            << runs.mocha.efficiency_gops_per_w() << " GOPS/W vs next best "
            << best.throughput_gops() << " GOPS / "
            << best.efficiency_gops_per_w() << " GOPS/W\n";
  return 0;
}
