// E12 (extension) — sensitivity analysis: do the headline comparisons
// survive perturbation of the modelling constants that substitute for the
// paper's post-layout synthesis? For each knob, MOCHA and the next-best
// baseline are re-planned and re-simulated on AlexNet and the relative
// gains reported. A reproduction whose conclusions flip when a constant
// moves 2x would not be a reproduction of anything.
#include "common.hpp"

#include "core/morph.hpp"

namespace {

using namespace mocha;

struct Outcome {
  double throughput_gain = 0;
  double efficiency_gain = 0;
};

Outcome compare(const fabric::FabricConfig& mocha_cfg,
                const model::TechParams& tech) {
  const nn::Network net = nn::make_alexnet();
  const core::RunReport mocha =
      core::make_mocha_accelerator(mocha_cfg, tech).run(net);

  double best_gops = 0;
  double best_eff = 0;
  for (baseline::Strategy strategy : baseline::kAllStrategies) {
    auto base_cfg = fabric::baseline_config(baseline::strategy_name(strategy));
    base_cfg.pe_rows = mocha_cfg.pe_rows;
    base_cfg.pe_cols = mocha_cfg.pe_cols;
    base_cfg.sram_bytes = mocha_cfg.sram_bytes;
    base_cfg.dram_bytes_per_cycle = mocha_cfg.dram_bytes_per_cycle;
    base_cfg.dma_channels = mocha_cfg.dma_channels;
    const core::RunReport report =
        baseline::make_baseline_accelerator(strategy, base_cfg, tech).run(net);
    best_gops = std::max(best_gops, report.throughput_gops());
    best_eff = std::max(best_eff, report.efficiency_gops_per_w());
  }
  return {(mocha.throughput_gops() / best_gops - 1.0) * 100.0,
          (mocha.efficiency_gops_per_w() / best_eff - 1.0) * 100.0};
}

}  // namespace

int main() {
  util::Table table(
      {"perturbation", "thr gain %", "eff gain %", "conclusion"});
  auto row = [&](const std::string& name, const Outcome& o) {
    table.row()
        .cell(name)
        .cell(o.throughput_gain, 1)
        .cell(o.efficiency_gain, 1)
        .cell(o.throughput_gain > 0 && o.efficiency_gain > 0
                  ? "mocha wins"
                  : "FLIPPED");
  };

  row("nominal", compare(fabric::mocha_default_config(),
                         model::default_tech()));

  {
    auto tech = model::default_tech();
    tech.dram_pj_per_byte *= 0.5;
    row("DRAM energy x0.5", compare(fabric::mocha_default_config(), tech));
    tech.dram_pj_per_byte *= 4.0;  // net x2 vs nominal
    row("DRAM energy x2", compare(fabric::mocha_default_config(), tech));
  }
  {
    auto tech = model::default_tech();
    tech.mac_pj *= 2.0;
    row("MAC energy x2", compare(fabric::mocha_default_config(), tech));
  }
  {
    auto config = fabric::mocha_default_config();
    config.zero_skip_floor = 1.0;  // zero-skipping disabled entirely
    row("no zero-skip", compare(config, model::default_tech()));
  }
  {
    auto config = fabric::mocha_default_config();
    config.codec_bytes_per_cycle = 4;  // half-rate codec engines
    row("codec rate x0.5", compare(config, model::default_tech()));
  }
  {
    auto config = fabric::mocha_default_config();
    config.dram_bytes_per_cycle = 4;  // bandwidth-starved platform
    row("DRAM bandwidth x0.5", compare(config, model::default_tech()));
    config.dram_bytes_per_cycle = 16;
    row("DRAM bandwidth x2", compare(config, model::default_tech()));
  }
  {
    auto config = fabric::mocha_default_config();
    config.dma_channels = 2;  // split-channel DMA
    row("2 DMA channels", compare(config, model::default_tech()));
  }
  {
    auto config = fabric::mocha_default_config();
    config.sram_bytes = 128 * 1024;
    row("scratchpad 128 KiB", compare(config, model::default_tech()));
  }

  mocha::bench::emit(table,
                     "E12: sensitivity of the headline gains (AlexNet)");
  return 0;
}
