// E0 — provenance table: the exact fabric configuration and modelling
// constants every other experiment ran with. Printed first so a results
// dump is self-describing.
#include "common.hpp"

#include "model/area.hpp"

int main() {
  using namespace mocha;
  const auto config = fabric::mocha_default_config();
  const auto tech = model::default_tech();

  util::Table fab({"fabric parameter", "value"});
  auto frow = [&](const char* k, const std::string& v) {
    fab.row().cell(k).cell(v);
  };
  frow("PE array", std::to_string(config.pe_rows) + "x" +
                       std::to_string(config.pe_cols) + " @ " +
                       std::to_string(static_cast<int>(config.clock_ghz * 1000)) +
                       " MHz");
  frow("register file / PE", std::to_string(config.rf_bytes_per_pe) + " B");
  frow("scratchpad",
       std::to_string(config.sram_bytes / 1024) + " KiB, " +
           std::to_string(config.sram_banks) + " banks");
  frow("DRAM bandwidth",
       std::to_string(config.dram_bytes_per_cycle) + " B/cycle over " +
           std::to_string(config.dma_channels) + " channel(s)");
  frow("DRAM row", std::to_string(config.dram_row_bytes) + " B, " +
                       std::to_string(config.dram_row_hit_latency) + "+" +
                       std::to_string(config.dram_row_miss_penalty) +
                       " cycles");
  frow("codec engines", std::to_string(config.codec_units) + " x " +
                            std::to_string(config.codec_bytes_per_cycle) +
                            " B/cycle");
  frow("zero-skip floor", std::to_string(config.zero_skip_floor));
  fab.print(std::cout, "E0a: fabric configuration");

  util::Table energy({"energy constant", "pJ"});
  auto erow = [&](const char* k, double v) {
    energy.row().cell(k).cell(v, 3);
  };
  erow("MAC (16-bit)", tech.mac_pj);
  erow("RF access / byte", tech.rf_pj_per_byte);
  erow("SRAM access / byte", tech.sram_pj_per_byte);
  erow("DRAM access / byte", tech.dram_pj_per_byte);
  erow("codec / raw byte", tech.codec_pj_per_byte);
  erow("NoC / byte-hop", tech.noc_pj_per_byte_hop);
  erow("reconfiguration", tech.reconfig_pj);
  std::cout << "\n";
  energy.print(std::cout, "E0b: energy constants (see docs/MODEL.md)");

  const model::AreaModel area(tech);
  std::cout << "\nareas: mocha " << area.total_mm2(config) << " mm2, baseline "
            << area.total_mm2(fabric::baseline_config("b"))
            << " mm2, leakage " << tech.leakage_mw_per_mm2 << " mW/mm2\n";
  return 0;
}
