// Shared plumbing for the experiment harnesses (E1..E9).
//
// Each harness regenerates one table/figure of the paper's evaluation:
// it prints the series as an aligned table plus a CSV block so the data
// can be re-plotted directly.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baseline/baselines.hpp"
#include "core/accelerator.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace mocha::bench {

/// Every accelerator the comparative figures sweep: MOCHA plus the three
/// fixed-strategy baselines, all planned for the same objective.
struct Fleet {
  core::Accelerator mocha;
  std::vector<std::pair<baseline::Strategy, core::Accelerator>> baselines;

  static Fleet make(core::Objective objective =
                        core::Objective::EnergyDelayProduct) {
    Fleet fleet{core::make_mocha_accelerator(fabric::mocha_default_config(),
                                             model::default_tech(), objective),
                {}};
    for (baseline::Strategy strategy : baseline::kAllStrategies) {
      fleet.baselines.emplace_back(
          strategy, baseline::make_baseline_accelerator(
                        strategy, model::default_tech(), objective));
    }
    return fleet;
  }
};

/// Per-network reports for the whole fleet, cached across figures within a
/// binary run.
struct FleetRuns {
  core::RunReport mocha;
  std::map<baseline::Strategy, core::RunReport> baselines;

  /// The baseline whose metric (extracted by `metric`) is best (highest).
  template <typename Metric>
  const core::RunReport& best_baseline(Metric metric) const {
    const core::RunReport* best = nullptr;
    for (const auto& [strategy, report] : baselines) {
      if (best == nullptr || metric(report) > metric(*best)) {
        best = &report;
      }
    }
    return *best;
  }
};

inline FleetRuns run_fleet(const Fleet& fleet, const nn::Network& net) {
  // MOCHA and every baseline plan+simulate independently, so the fleet runs
  // concurrently; reports land in index-addressed slots and are keyed by
  // strategy afterwards, keeping the result identical to the serial sweep.
  const auto count = static_cast<std::int64_t>(1 + fleet.baselines.size());
  std::vector<core::RunReport> reports =
      util::parallel_transform<core::RunReport>(
          count, 1, [&](std::int64_t i) {
            return i == 0
                       ? fleet.mocha.run(net)
                       : fleet.baselines[static_cast<std::size_t>(i - 1)]
                             .second.run(net);
          });
  FleetRuns runs{std::move(reports.front()), {}};
  for (std::size_t b = 0; b < fleet.baselines.size(); ++b) {
    runs.baselines.emplace(fleet.baselines[b].first,
                           std::move(reports[b + 1]));
  }
  return runs;
}

inline void emit(const util::Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << "\n--- CSV ---\n" << table.to_csv() << "\n";
}

}  // namespace mocha::bench
