// E15 — graceful-degradation figure: kill a growing fraction of the
// fabric's PEs, SRAM banks, and codec engines, and compare
//
//   * re-morphed MOCHA — the morph controller plans against the surviving
//     resources (fault::degraded_config), steering tile shapes, parallelism
//     and codecs around the damage; vs.
//   * fixed plan — the healthy-fabric plan replayed on the degraded fabric,
//     what a fixed-function accelerator (or one without a re-planning
//     controller) is stuck with. Its over-split parallelism time-multiplexes
//     onto the surviving PE groups and its working set may no longer fit
//     the shrunken scratchpad.
//
// The harness is self-asserting: at >= 25% resource loss the re-morphed
// plan must strictly beat the fixed plan in throughput, or the binary exits
// non-zero (this is the paper's "morphability = graceful degradation"
// claim, and the degradation_smoke ctest keeps it true).
//
//   fig_degradation [--smoke] [--out FILE]
#include <fstream>

#include "common.hpp"
#include "core/morph.hpp"
#include "fault/model.hpp"
#include "obs/manifest.hpp"
#include "obs/sink.hpp"
#include "util/json.hpp"

namespace {

struct Point {
  std::string network;
  double kill_fraction = 0;
  std::string scenario_summary;
  std::string scenario_json;
  double mocha_gops = 0;
  double fixed_gops = 0;
  bool mocha_sram_ok = true;
  bool fixed_sram_ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mocha;

  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: fig_degradation [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.0, 0.25, 0.5}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75};
  std::vector<nn::Network> nets;
  nets.push_back(nn::make_alexnet());
  if (!smoke) nets.push_back(nn::make_vgg16());

  const fabric::FabricConfig base = fabric::mocha_default_config();
  const model::TechParams tech = model::default_tech();
  const auto planner = std::make_shared<core::MorphController>(
      tech, core::MorphOptions{});

  std::vector<Point> points;
  bool degraded_wins = true;
  util::Table table({"network", "killed %", "scenario", "mocha GOPS",
                     "fixed-plan GOPS", "gain %", "fixed fits"});
  for (const nn::Network& net : nets) {
    const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
    // The plan a healthy fabric would choose — frozen, then replayed on
    // every degraded configuration below.
    const core::Accelerator healthy(base, tech, planner);
    const dataflow::NetworkPlan healthy_plan = healthy.plan(net, stats);

    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const double frac = fractions[fi];
      fault::FaultModel scenario;
      if (frac > 0.0) {
        scenario = fault::FaultModel::random_scenario(
            base, frac, 42 + static_cast<std::uint64_t>(fi));
      }
      const fabric::FabricConfig degraded =
          fault::degraded_config(base, scenario);
      fault::record_metrics(base, scenario);

      const core::RunReport morphed =
          core::Accelerator(degraded, tech, planner).run(net);
      const core::RunReport fixed =
          core::Accelerator(degraded, tech, planner)
              .run_with_plan(net, healthy_plan, stats);

      Point p;
      p.network = net.name;
      p.kill_fraction = frac;
      p.scenario_summary = scenario.summary(base);
      p.scenario_json = scenario.to_json();
      p.mocha_gops = morphed.throughput_gops();
      p.fixed_gops = fixed.throughput_gops();
      p.mocha_sram_ok = morphed.sram_ok;
      p.fixed_sram_ok = fixed.sram_ok;
      points.push_back(p);

      if (frac >= 0.25 && p.mocha_gops <= p.fixed_gops) {
        degraded_wins = false;
        std::cerr << "FAIL: " << net.name << " at " << frac * 100
                  << "% loss: re-morphed " << p.mocha_gops
                  << " GOPS <= fixed-plan " << p.fixed_gops << " GOPS\n";
      }

      table.row()
          .cell(p.network)
          .cell(frac * 100, 0)
          .cell(p.scenario_summary)
          .cell(p.mocha_gops)
          .cell(p.fixed_gops)
          .cell((p.mocha_gops / p.fixed_gops - 1.0) * 100, 1)
          .cell(p.fixed_sram_ok ? "yes" : "no");
    }
  }
  bench::emit(table, "E15: graceful degradation (re-morphed vs fixed plan)");

  if (!out_path.empty()) {
    obs::RunManifest manifest = obs::RunManifest::current("fig_degradation");
    manifest.accelerator = "mocha";
    manifest.objective = "edp";
    util::JsonWriter json;
    json.begin_object();
    json.key("schema").value("mocha.e15.v1");
    json.key("manifest");
    manifest.write_json(json);
    json.key("smoke").value(smoke);
    json.key("series").begin_array();
    for (const Point& p : points) {
      json.begin_object();
      json.key("network").value(p.network);
      json.key("kill_fraction").value(p.kill_fraction);
      json.key("scenario").value(p.scenario_json);
      json.key("scenario_summary").value(p.scenario_summary);
      json.key("mocha_gops").value(p.mocha_gops);
      json.key("fixed_gops").value(p.fixed_gops);
      json.key("mocha_sram_ok").value(p.mocha_sram_ok);
      json.key("fixed_sram_ok").value(p.fixed_sram_ok);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (!mocha::obs::write_file_atomic(out_path, json.str() + "\n")) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  return degraded_wins ? 0 : 1;
}
