// E4 — energy-efficiency figure: GOPS/W per layer and total, plus the
// energy breakdown by component. Paper claim: up to 63% higher energy
// efficiency than the next best accelerator.
#include "common.hpp"

int main() {
  using namespace mocha;
  const bench::Fleet fleet = bench::Fleet::make(core::Objective::Energy);
  double best_gain = 0;

  for (const nn::Network& net : nn::benchmark_networks()) {
    const bench::FleetRuns runs = bench::run_fleet(fleet, net);
    auto layer_eff = [&](const core::RunReport& report, std::size_t l) {
      const core::GroupReport* group = report.group_for_layer(l);
      if (group == nullptr || group->energy.total_pj() == 0.0) return 0.0;
      return 2.0 * static_cast<double>(group->dense_macs) /
             (group->energy.total_pj() * 1e-3);
    };
    util::Table table({"layer", "mocha GOPS/W", "tiling", "merge", "parallel",
                       "gain vs best %"});
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      if (net.layers[l].kind == nn::LayerKind::Pool) continue;
      const double mocha = layer_eff(runs.mocha, l);
      const double tiling =
          layer_eff(runs.baselines.at(baseline::Strategy::TilingOnly), l);
      const double merge =
          layer_eff(runs.baselines.at(baseline::Strategy::MergeOnly), l);
      const double parallel =
          layer_eff(runs.baselines.at(baseline::Strategy::ParallelOnly), l);
      const double best = std::max({tiling, merge, parallel});
      const double gain = best > 0 ? (mocha / best - 1.0) * 100.0 : 0.0;
      best_gain = std::max(best_gain, gain);
      table.row()
          .cell(net.layers[l].name)
          .cell(mocha)
          .cell(tiling)
          .cell(merge)
          .cell(parallel)
          .cell(gain, 1);
    }
    const core::RunReport& best_total = runs.best_baseline(
        [](const core::RunReport& r) { return r.efficiency_gops_per_w(); });
    table.row()
        .cell("TOTAL")
        .cell(runs.mocha.efficiency_gops_per_w())
        .cell(runs.baselines.at(baseline::Strategy::TilingOnly)
                  .efficiency_gops_per_w())
        .cell(runs.baselines.at(baseline::Strategy::MergeOnly)
                  .efficiency_gops_per_w())
        .cell(runs.baselines.at(baseline::Strategy::ParallelOnly)
                  .efficiency_gops_per_w())
        .cell((runs.mocha.efficiency_gops_per_w() /
                   best_total.efficiency_gops_per_w() -
               1.0) *
                  100.0,
              1);
    bench::emit(table, "E4: energy efficiency, " + net.name + " (GOPS/W)");

    // Component breakdown for the totals (the figure's stacked bars).
    util::Table breakdown({"accelerator", "MAC mJ", "RF mJ", "SRAM mJ",
                           "DRAM mJ", "codec mJ", "NoC mJ", "leak mJ",
                           "total mJ"});
    auto add_breakdown = [&](const std::string& name,
                             const core::RunReport& report) {
      model::EnergyBreakdown sum;
      for (const core::GroupReport& group : report.groups) {
        sum.mac_pj += group.energy.mac_pj;
        sum.rf_pj += group.energy.rf_pj;
        sum.sram_pj += group.energy.sram_pj;
        sum.dram_pj += group.energy.dram_pj;
        sum.codec_pj += group.energy.codec_pj;
        sum.noc_pj += group.energy.noc_pj;
        sum.leakage_pj += group.energy.leakage_pj;
        sum.control_pj += group.energy.control_pj;
      }
      breakdown.row()
          .cell(name)
          .cell(sum.mac_pj * 1e-9, 3)
          .cell(sum.rf_pj * 1e-9, 3)
          .cell(sum.sram_pj * 1e-9, 3)
          .cell(sum.dram_pj * 1e-9, 3)
          .cell(sum.codec_pj * 1e-9, 3)
          .cell(sum.noc_pj * 1e-9, 3)
          .cell(sum.leakage_pj * 1e-9, 3)
          .cell(sum.total_pj() * 1e-9, 3);
    };
    add_breakdown("mocha", runs.mocha);
    for (const auto& [strategy, report] : runs.baselines) {
      add_breakdown(baseline::strategy_name(strategy), report);
    }
    bench::emit(breakdown, "E4b: energy breakdown, " + net.name);
  }
  std::cout << "max per-layer efficiency gain vs next best: " << best_gain
            << "%   (paper: up to 63%)\n";
  return 0;
}
