// E7 — ablation figure: value of *interleaving* and *cascading* the
// optimizations (the abstract's differentiators (ii)/(iii)). All variants
// run on the identical MOCHA hardware; only the controller's freedom grows:
//   T        tiling alone
//   T+C      tiling interleaved with compression
//   T+C+P    + feature-map parallelism
//   full     + layer merging (cascading across layers) = MOCHA
#include "common.hpp"

#include "core/morph.hpp"

int main() {
  using namespace mocha;
  struct Variant {
    const char* name;
    core::MorphOptions options;
  };
  std::vector<Variant> variants;
  {
    core::MorphOptions t;
    t.allow_compression = false;
    t.allow_fusion = false;
    t.parallelism_options = {{1, 1}};
    variants.push_back({"T (tiling)", t});
    core::MorphOptions tc = t;
    tc.allow_compression = true;
    variants.push_back({"T+C (+compression)", tc});
    core::MorphOptions tcp = tc;
    tcp.parallelism_options = core::MorphOptions{}.parallelism_options;
    variants.push_back({"T+C+P (+parallelism)", tcp});
    core::MorphOptions full = tcp;
    full.allow_fusion = true;
    variants.push_back({"full MOCHA (+merging)", full});
    core::MorphOptions huff = full;
    huff.allow_huffman = true;
    variants.push_back({"MOCHA + entropy coding", huff});
  }

  for (const nn::Network& net : nn::benchmark_networks()) {
    util::Table table({"variant", "cycles M", "GOPS", "GOPS/W", "DRAM MiB",
                       "EDP norm"});
    double base_edp = 0;
    for (const Variant& variant : variants) {
      const core::Accelerator acc(
          fabric::mocha_default_config(), model::default_tech(),
          std::make_shared<core::MorphController>(model::default_tech(),
                                                  variant.options));
      const core::RunReport report = acc.run(net);
      const double edp = report.total_energy_pj *
                         static_cast<double>(report.total_cycles);
      if (base_edp == 0) base_edp = edp;
      table.row()
          .cell(variant.name)
          .cell(static_cast<double>(report.total_cycles) / 1e6)
          .cell(report.throughput_gops())
          .cell(report.efficiency_gops_per_w())
          .cell(static_cast<double>(report.total_dram_bytes) /
                (1024.0 * 1024.0))
          .cell(edp / base_edp, 3);
    }
    bench::emit(table, "E7: optimization ablation, " + net.name);
  }
  return 0;
}
