// E13 (extension) — roofline: per-layer operational intensity (MACs per
// DRAM byte) against attained GOPS, for MOCHA and the tiling baseline on
// AlexNet + VGG-16. Compression moves layers RIGHT (fewer DRAM bytes per
// MAC) and zero-skipping lifts the attainable ceiling — the roofline view
// of why MOCHA wins where it wins.
#include "common.hpp"

int main() {
  using namespace mocha;
  const auto config = fabric::mocha_default_config();
  const double peak_gops = config.peak_gops();
  const double bw_gops_per_intensity =
      // GOPS attainable per unit intensity: 2 ops/MAC * bytes/s.
      2.0 * static_cast<double>(config.dram_bytes_per_cycle) *
      config.clock_ghz;
  std::cout << "roofline: peak " << peak_gops << " GOPS, memory slope "
            << bw_gops_per_intensity << " GOPS per (MAC/byte)\n\n";

  const bench::Fleet fleet = bench::Fleet::make(core::Objective::Cycles);
  for (const nn::Network& net : nn::benchmark_networks()) {
    const core::RunReport mocha = fleet.mocha.run(net);
    const core::RunReport tiling =
        fleet.baselines.front().second.run(net);

    util::Table table({"layer", "mocha MAC/B", "mocha GOPS", "mocha PE util",
                       "tiling MAC/B", "tiling GOPS", "regime"});
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      if (net.layers[l].kind == nn::LayerKind::Pool) continue;
      const core::GroupReport* mg = mocha.group_for_layer(l);
      const core::GroupReport* tg = tiling.group_for_layer(l);
      if (mg == nullptr || tg == nullptr) continue;
      const double mocha_gops = mg->throughput_gops(mocha.clock_ghz);
      const double knee_intensity = peak_gops / bw_gops_per_intensity;
      table.row()
          .cell(net.layers[l].name)
          .cell(mg->macs_per_dram_byte(), 1)
          .cell(mocha_gops)
          .cell(mg->pe_utilization, 2)
          .cell(tg->macs_per_dram_byte(), 1)
          .cell(tg->throughput_gops(tiling.clock_ghz))
          .cell(mg->macs_per_dram_byte() < knee_intensity ? "memory-bound"
                                                          : "compute-bound");
    }
    bench::emit(table, "E13: roofline coordinates, " + net.name);
  }
  return 0;
}
