// E3 — throughput figure: per-layer and total GOPS for MOCHA vs the fixed
// baselines on AlexNet and VGG-16. Paper claim: up to 42% higher throughput
// than the next best accelerator.
#include "common.hpp"

int main() {
  using namespace mocha;
  const bench::Fleet fleet = bench::Fleet::make(core::Objective::Cycles);
  double worst_gain = 1e9;
  double best_gain = 0;

  for (const nn::Network& net : nn::benchmark_networks()) {
    const bench::FleetRuns runs = bench::run_fleet(fleet, net);
    util::Table table({"layer", "mocha GOPS", "tiling", "merge", "parallel",
                       "gain vs best %"});
    auto layer_gops = [&](const core::RunReport& report, std::size_t l) {
      const core::GroupReport* group = report.group_for_layer(l);
      return group == nullptr ? 0.0
                              : group->throughput_gops(report.clock_ghz);
    };
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      if (net.layers[l].kind == nn::LayerKind::Pool) continue;
      const double mocha = layer_gops(runs.mocha, l);
      const double tiling =
          layer_gops(runs.baselines.at(baseline::Strategy::TilingOnly), l);
      const double merge =
          layer_gops(runs.baselines.at(baseline::Strategy::MergeOnly), l);
      const double parallel =
          layer_gops(runs.baselines.at(baseline::Strategy::ParallelOnly), l);
      const double best = std::max({tiling, merge, parallel});
      const double gain = best > 0 ? (mocha / best - 1.0) * 100.0 : 0.0;
      best_gain = std::max(best_gain, gain);
      table.row()
          .cell(net.layers[l].name)
          .cell(mocha)
          .cell(tiling)
          .cell(merge)
          .cell(parallel)
          .cell(gain, 1);
    }
    const core::RunReport& best_total = runs.best_baseline(
        [](const core::RunReport& r) { return r.throughput_gops(); });
    const double total_gain =
        (runs.mocha.throughput_gops() / best_total.throughput_gops() - 1.0) *
        100.0;
    worst_gain = std::min(worst_gain, total_gain);
    table.row()
        .cell("TOTAL")
        .cell(runs.mocha.throughput_gops())
        .cell(runs.baselines.at(baseline::Strategy::TilingOnly)
                  .throughput_gops())
        .cell(runs.baselines.at(baseline::Strategy::MergeOnly)
                  .throughput_gops())
        .cell(runs.baselines.at(baseline::Strategy::ParallelOnly)
                  .throughput_gops())
        .cell(total_gain, 1);
    bench::emit(table, "E3: throughput, " + net.name + " (GOPS)");
  }
  std::cout << "max per-layer throughput gain vs next best: " << best_gain
            << "%   (paper: up to 42%)\n";
  return 0;
}
