// E5 — storage figure: peak on-chip storage per layer group and per
// network. Paper claim: up to 30% less storage than the next best
// accelerator (compressed residency in the scratchpad).
#include "common.hpp"

int main() {
  using namespace mocha;
  const bench::Fleet fleet = bench::Fleet::make();
  double best_saving = 0;

  for (const nn::Network& net : nn::benchmark_networks()) {
    const bench::FleetRuns runs = bench::run_fleet(fleet, net);
    auto layer_peak = [&](const core::RunReport& report, std::size_t l) {
      const core::GroupReport* group = report.group_for_layer(l);
      return group == nullptr ? 0.0
                              : static_cast<double>(group->peak_sram_bytes) /
                                    1024.0;
    };
    util::Table table({"layer", "mocha KiB", "tiling", "merge", "parallel",
                       "saving vs best %"});
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      if (net.layers[l].kind == nn::LayerKind::Pool) continue;
      const double mocha = layer_peak(runs.mocha, l);
      const double tiling =
          layer_peak(runs.baselines.at(baseline::Strategy::TilingOnly), l);
      const double merge =
          layer_peak(runs.baselines.at(baseline::Strategy::MergeOnly), l);
      const double parallel =
          layer_peak(runs.baselines.at(baseline::Strategy::ParallelOnly), l);
      // "Best" baseline for storage = the one needing the least.
      const double best = std::min({tiling, merge, parallel});
      const double saving = best > 0 ? (1.0 - mocha / best) * 100.0 : 0.0;
      best_saving = std::max(best_saving, saving);
      table.row()
          .cell(net.layers[l].name)
          .cell(mocha, 1)
          .cell(tiling, 1)
          .cell(merge, 1)
          .cell(parallel, 1)
          .cell(saving, 1);
    }
    double best_total = 1e300;
    for (const auto& [strategy, report] : runs.baselines) {
      best_total =
          std::min(best_total, static_cast<double>(report.peak_sram_bytes));
    }
    table.row()
        .cell("NETWORK PEAK")
        .cell(static_cast<double>(runs.mocha.peak_sram_bytes) / 1024.0, 1)
        .cell(static_cast<double>(
                  runs.baselines.at(baseline::Strategy::TilingOnly)
                      .peak_sram_bytes) /
                  1024.0,
              1)
        .cell(static_cast<double>(
                  runs.baselines.at(baseline::Strategy::MergeOnly)
                      .peak_sram_bytes) /
                  1024.0,
              1)
        .cell(static_cast<double>(
                  runs.baselines.at(baseline::Strategy::ParallelOnly)
                      .peak_sram_bytes) /
                  1024.0,
              1)
        .cell((1.0 - static_cast<double>(runs.mocha.peak_sram_bytes) /
                         best_total) *
                  100.0,
              1);
    bench::emit(table, "E5: peak on-chip storage, " + net.name + " (KiB)");
  }
  std::cout << "max per-layer storage saving vs best baseline: "
            << best_saving << "%   (paper: up to 30%)\n";
  return 0;
}
