// E10a — google-benchmark microbenchmarks of the codec implementations:
// encode/decode throughput across sparsities (the codec engines' software
// model must be fast enough to feed functional-mode sweeps).
#include <benchmark/benchmark.h>

#include "compress/codec.hpp"
#include "util/rng.hpp"

namespace {

using mocha::compress::CodecKind;
using mocha::nn::Value;

std::vector<Value> make_stream(std::size_t n, double sparsity) {
  mocha::util::Rng rng(42);
  std::vector<Value> out(n);
  for (Value& v : out) {
    if (rng.bernoulli(sparsity)) {
      v = 0;
    } else {
      v = static_cast<Value>(rng.uniform_int(-96, 96));
      if (v == 0) v = 1;
    }
  }
  return out;
}

void BM_Encode(benchmark::State& state) {
  const auto kind = static_cast<CodecKind>(state.range(0));
  const double sparsity = static_cast<double>(state.range(1)) / 100.0;
  const auto codec = mocha::compress::make_codec(kind);
  const auto stream = make_stream(1 << 16, sparsity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size() * 2));
  state.SetLabel(mocha::compress::codec_name(kind));
}

void BM_Decode(benchmark::State& state) {
  const auto kind = static_cast<CodecKind>(state.range(0));
  const double sparsity = static_cast<double>(state.range(1)) / 100.0;
  const auto codec = mocha::compress::make_codec(kind);
  const auto stream = make_stream(1 << 16, sparsity);
  const auto coded = codec->encode(stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(coded, stream.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size() * 2));
  state.SetLabel(mocha::compress::codec_name(kind));
}

void CodecArgs(benchmark::internal::Benchmark* bench) {
  for (int kind = 1; kind <= 3; ++kind) {  // skip None
    for (int sparsity : {0, 50, 90}) {
      bench->Args({kind, sparsity});
    }
  }
}

BENCHMARK(BM_Encode)->Apply(CodecArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decode)->Apply(CodecArgs)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
