// E10b — google-benchmark microbenchmarks of the simulation stack:
// engine event throughput, schedule construction, cost-model evaluation,
// and whole-network planning. These bound how large a design-space sweep
// the harness can afford.
#include <benchmark/benchmark.h>

#include "core/accelerator.hpp"
#include "dataflow/cost.hpp"
#include "dataflow/schedule.hpp"

namespace {

using namespace mocha;

dataflow::NetworkPlan neutral_plan(const nn::Network& net) {
  dataflow::NetworkPlan plan;
  for (const nn::LayerSpec& layer : net.layers) {
    dataflow::LayerPlan lp;
    lp.tile = {layer.out_h(), layer.out_w(), layer.in_c,
               layer.out_channels()};
    plan.layers.push_back(lp);
  }
  return plan;
}

void BM_EngineEventThroughput(benchmark::State& state) {
  // A wide synthetic DAG: chains of width `range(0)`, depth 64.
  const int width = static_cast<int>(state.range(0));
  std::size_t tasks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::TaskGraph graph;
    for (int d = 0; d < 64; ++d) {
      for (int w = 0; w < width; ++w) {
        sim::Task t;
        t.resources = {static_cast<sim::ResourceId>(w % 3)};
        t.duration = static_cast<sim::Cycle>(w % 7 + 1);
        if (d > 0) {
          t.deps = {static_cast<sim::TaskId>((d - 1) * width + w)};
        }
        graph.add(std::move(t));
      }
    }
    state.ResumeTiming();
    const sim::Engine engine({{"a", 4}, {"b", 2}, {"c", 1}});
    benchmark::DoNotOptimize(engine.run(graph));
    tasks += graph.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(16)->Arg(64)->Arg(256);

void BM_BuildAlexnetConv2Schedule(benchmark::State& state) {
  const nn::Network net = nn::make_alexnet();
  const auto plan = neutral_plan(net);
  const auto config = fabric::mocha_default_config();
  const std::vector<dataflow::LayerStreamStats> stats(net.layers.size(),
                                                      {0.5, 0.3, 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dataflow::build_group_schedule(net, plan, {2, 2}, config, stats));
  }
}
BENCHMARK(BM_BuildAlexnetConv2Schedule)->Unit(benchmark::kMillisecond);

void BM_CostModelEvaluation(benchmark::State& state) {
  const nn::Network net = nn::make_alexnet();
  const auto plan = neutral_plan(net);
  const auto config = fabric::mocha_default_config();
  const std::vector<dataflow::LayerStreamStats> stats(net.layers.size(),
                                                      {0.5, 0.3, 0.5});
  const auto tech = model::default_tech();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataflow::estimate_group_cost(
        net, plan, {2, 2}, config, stats, tech));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CostModelEvaluation);

void BM_PlanAlexnet(benchmark::State& state) {
  const core::Accelerator acc = core::make_mocha_accelerator();
  const nn::Network net = nn::make_alexnet();
  const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.plan(net, stats));
  }
}
BENCHMARK(BM_PlanAlexnet)->Unit(benchmark::kMillisecond);

void BM_SimulateAlexnetWithPlan(benchmark::State& state) {
  const core::Accelerator acc = core::make_mocha_accelerator();
  const nn::Network net = nn::make_alexnet();
  const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
  const auto plan = acc.plan(net, stats);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.run_with_plan(net, plan, stats));
  }
}
BENCHMARK(BM_SimulateAlexnetWithPlan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
