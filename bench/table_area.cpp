// E2 — area table: per-component breakdown for MOCHA and the baseline
// substrate, and the total overhead the abstract quotes as +26-35%.
#include "common.hpp"

#include "model/area.hpp"

int main() {
  using namespace mocha;
  const model::AreaModel area(model::default_tech());
  const auto mocha_cfg = fabric::mocha_default_config();
  const auto base_cfg = fabric::baseline_config("baseline");
  const model::AreaBreakdown m = area.breakdown(mocha_cfg);
  const model::AreaBreakdown b = area.breakdown(base_cfg);

  util::Table table({"component", "baseline mm2", "mocha mm2", "delta mm2"});
  auto row = [&](const char* name, double bv, double mv) {
    table.row().cell(name).cell(bv, 3).cell(mv, 3).cell(mv - bv, 3);
  };
  row("PE array", b.pe_mm2, m.pe_mm2);
  row("register files", b.rf_mm2, m.rf_mm2);
  row("scratchpad SRAM", b.sram_mm2, m.sram_mm2);
  row("interconnect", b.noc_mm2, m.noc_mm2);
  row("DMA engines", b.dma_mm2, m.dma_mm2);
  row("codec engines", b.codec_mm2, m.codec_mm2);
  row("controller", b.controller_mm2, m.controller_mm2);
  row("TOTAL", b.total_mm2(), m.total_mm2());
  bench::emit(table, "E2: post-layout-style area breakdown");

  const double overhead = m.total_mm2() / b.total_mm2() - 1.0;
  std::cout << "MOCHA area overhead: " << overhead * 100.0
            << "%   (paper: 26-35%)\n";
  return 0;
}
