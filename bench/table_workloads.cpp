// E1 — workload dimension table (the paper's benchmark-description table):
// layer-by-layer dimensions, MACs and stream sizes for AlexNet and VGG-16.
#include "common.hpp"

int main() {
  using namespace mocha;
  for (const nn::Network& net : nn::benchmark_networks()) {
    util::Table table({"layer", "type", "in CxHxW", "out CxHxW", "k", "s",
                       "MMACs", "ifmap KiB", "weights KiB"});
    for (const nn::LayerSpec& layer : net.layers) {
      const char* kind = layer.kind == nn::LayerKind::Conv ? "conv"
                         : layer.kind == nn::LayerKind::Pool ? "pool"
                                                             : "fc";
      std::ostringstream in, out;
      in << layer.in_c << "x" << layer.in_h << "x" << layer.in_w;
      out << layer.out_channels() << "x" << layer.out_h() << "x"
          << layer.out_w();
      table.row()
          .cell(layer.name)
          .cell(kind)
          .cell(in.str())
          .cell(out.str())
          .cell(static_cast<long long>(layer.kernel))
          .cell(static_cast<long long>(layer.stride))
          .cell(static_cast<double>(layer.macs()) / 1e6, 1)
          .cell(static_cast<double>(layer.ifmap_bytes()) / 1024.0, 1)
          .cell(static_cast<double>(layer.weight_bytes()) / 1024.0, 1);
    }
    bench::emit(table, "E1: " + net.name + " layer dimensions");
    std::cout << net.name << " totals: "
              << static_cast<double>(net.total_macs()) / 1e9 << " GMACs, "
              << static_cast<double>(net.total_weight_bytes()) / 1e6
              << " MB weights\n\n";
  }
  return 0;
}
