// E11 (extension) — batch scaling: throughput and efficiency vs batch size
// on AlexNet (whose FC layers are weight-bandwidth-bound at batch 1) for
// MOCHA and the next-best baseline. Demonstrates the classic batching
// crossover: FC layers recover arithmetic intensity as resident/streamed
// weights amortize over images.
#include "common.hpp"

int main() {
  using namespace mocha;
  const nn::Network net = nn::make_alexnet();

  util::Table table({"batch", "mocha GOPS", "mocha GOPS/W", "mocha ms/img",
                     "nextbest GOPS", "nextbest GOPS/W"});
  for (nn::Index batch : {1, 2, 4, 8, 16}) {
    const core::RunReport mocha =
        core::make_mocha_accelerator().run(net, {}, batch);

    double best_gops = 0;
    double best_eff = 0;
    for (baseline::Strategy strategy : baseline::kAllStrategies) {
      const core::RunReport report =
          baseline::make_baseline_accelerator(strategy).run(net, {}, batch);
      best_gops = std::max(best_gops, report.throughput_gops());
      best_eff = std::max(best_eff, report.efficiency_gops_per_w());
    }
    table.row()
        .cell(static_cast<long long>(batch))
        .cell(mocha.throughput_gops())
        .cell(mocha.efficiency_gops_per_w())
        .cell(mocha.runtime_ms() / static_cast<double>(batch))
        .cell(best_gops)
        .cell(best_eff);
  }
  bench::emit(table, "E11: batch scaling, AlexNet");
  return 0;
}
