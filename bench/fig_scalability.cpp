// E9 — scalability figure: MOCHA vs next-best across PE-array sizes and
// scratchpad capacities (does the advantage persist as resources scale?).
#include "common.hpp"

int main() {
  using namespace mocha;
  const nn::Network net = nn::make_alexnet();

  util::Table pe_table({"PE array", "mocha GOPS", "nextbest GOPS", "gain %",
                        "mocha GOPS/W", "nextbest GOPS/W", "gain %"});
  for (int dim : {4, 8, 12, 16}) {
    auto mocha_cfg = fabric::mocha_default_config();
    mocha_cfg.pe_rows = mocha_cfg.pe_cols = dim;
    const core::RunReport mocha =
        core::make_mocha_accelerator(mocha_cfg).run(net);

    core::RunReport best;
    double best_score = -1;
    for (baseline::Strategy strategy : baseline::kAllStrategies) {
      auto base_cfg = fabric::baseline_config(baseline::strategy_name(strategy));
      base_cfg.pe_rows = base_cfg.pe_cols = dim;
      const core::RunReport report =
          baseline::make_baseline_accelerator(strategy, base_cfg,
                                              model::default_tech())
              .run(net);
      if (report.throughput_gops() > best_score) {
        best_score = report.throughput_gops();
        best = report;
      }
    }
    std::ostringstream label;
    label << dim << "x" << dim;
    pe_table.row()
        .cell(label.str())
        .cell(mocha.throughput_gops())
        .cell(best.throughput_gops())
        .cell((mocha.throughput_gops() / best.throughput_gops() - 1.0) * 100,
              1)
        .cell(mocha.efficiency_gops_per_w())
        .cell(best.efficiency_gops_per_w())
        .cell((mocha.efficiency_gops_per_w() /
                   best.efficiency_gops_per_w() -
               1.0) *
                  100,
              1);
  }
  bench::emit(pe_table, "E9a: PE-array scaling (AlexNet)");

  util::Table sram_table({"SRAM KiB", "mocha GOPS", "mocha GOPS/W",
                          "DRAM MiB", "peak KiB"});
  for (int kib : {32, 64, 128, 256, 512}) {
    auto config = fabric::mocha_default_config();
    config.sram_bytes = static_cast<std::int64_t>(kib) * 1024;
    const core::RunReport report =
        core::make_mocha_accelerator(config).run(net);
    sram_table.row()
        .cell(static_cast<long long>(kib))
        .cell(report.throughput_gops())
        .cell(report.efficiency_gops_per_w())
        .cell(static_cast<double>(report.total_dram_bytes) / (1024.0 * 1024.0))
        .cell(static_cast<double>(report.peak_sram_bytes) / 1024.0, 1);
  }
  bench::emit(sram_table, "E9b: scratchpad scaling (AlexNet, MOCHA)");
  return 0;
}
