// mocha_sim — command-line front end for the simulator.
//
//   mocha_sim [--network alexnet|vgg16|lenet5|nin|mobilenet] [--accelerator mocha|tiling|
//             merge|parallel|nextbest] [--objective edp|cycles|energy]
//             [--batch N] [--sram-kib N] [--pe N] [--clock-mhz N]
//             [--no-compression] [--huffman] [--json] [--plan]
//             [--trace FILE] [--metrics]
//
// Examples:
//   mocha_sim --network alexnet                         # MOCHA, defaults
//   mocha_sim --network vgg16 --accelerator nextbest    # best fixed baseline
//   mocha_sim --network alexnet --batch 8 --json        # machine-readable
//   mocha_sim --network alexnet --trace trace.json      # chrome://tracing
//   mocha_sim --network alexnet --fault-kill 0.25       # degraded fabric
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "baseline/baselines.hpp"
#include "core/accelerator.hpp"
#include "core/morph.hpp"
#include "core/report_json.hpp"
#include "dataflow/schedule.hpp"
#include "fault/model.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json_parse.hpp"
#include "util/cpuid.hpp"
#include "serve/signal.hpp"
#include "sim/dot.hpp"
#include "util/table.hpp"

namespace {

struct Args {
  std::string network = "alexnet";
  std::string accelerator = "mocha";
  std::string objective = "edp";
  mocha::nn::Index batch = 1;
  std::int64_t sram_kib = 0;  // 0 = default
  int pe = 0;                 // 0 = default
  double clock_mhz = 0;       // 0 = default
  bool no_compression = false;
  bool huffman = false;
  bool json = false;
  bool show_plan = false;
  bool metrics = false;   // collect and print a MetricsRegistry snapshot
  bool critpath = false;  // per-group critical-path summary in the report
  bool trace_flows = false;  // dependence-edge flow events in the trace
  std::string slack_hints_file;  // mocha.hints.v1 planner bias (mocha only)
  std::string dot_file;   // export the first group's schedule as Graphviz
  std::string trace_file; // write a Chrome trace-event JSON of the run
  std::string faults_file;  // JSON fault scenario (fault/model.hpp)
  double fault_kill = 0.0;  // random scenario killing this fraction
  std::uint64_t fault_seed = 42;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--network alexnet|vgg16|lenet5|nin|mobilenet] [--accelerator "
         "mocha|tiling|merge|parallel|nextbest]\n"
         "       [--objective edp|cycles|energy] [--batch N] [--sram-kib N] "
         "[--pe N] [--clock-mhz N]\n"
         "       [--no-compression] [--huffman] [--json] [--plan] "
         "[--dot FILE]\n"
         "       [--trace FILE] [--trace-flows] [--metrics] "
         "[--isa scalar|avx2|neon]\n"
         "       [--critpath] [--slack-hints FILE]\n"
         "       [--faults FILE] [--fault-kill FRAC] [--fault-seed N]\n";
  std::exit(2);
}

/// Malformed command line: explain on stderr, then the usual usage + exit 2.
[[noreturn]] void bad_arg(const char* argv0, const std::string& message) {
  std::cerr << "error: " << message << "\n";
  usage(argv0);
}

/// Strict integer: whole string must parse and land inside [lo, hi].
/// stoll's exceptions (and its tolerance for trailing junk like "4x") must
/// not leak out of argument parsing as aborts.
std::int64_t parse_int(const char* argv0, const std::string& flag,
                       const std::string& text, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t value = 0;
  std::size_t used = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty()) {
    bad_arg(argv0, flag + " expects an integer, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    bad_arg(argv0, flag + "=" + text + " outside [" + std::to_string(lo) +
                       ", " + std::to_string(hi) + "]");
  }
  return value;
}

/// Strict finite double inside [lo, hi].
double parse_double(const char* argv0, const std::string& flag,
                    const std::string& text, double lo, double hi) {
  double value = 0;
  std::size_t used = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !std::isfinite(value)) {
    bad_arg(argv0, flag + " expects a number, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    std::ostringstream os;
    os << flag << "=" << text << " outside [" << lo << ", " << hi << "]";
    bad_arg(argv0, os.str());
  }
  return value;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // --key=value and "--key value" are both accepted.
    bool have_inline = false;
    std::string inline_value;
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        have_inline = true;
        inline_value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      }
    }
    bool took_value = false;
    auto value = [&]() -> std::string {
      took_value = true;
      if (have_inline) return inline_value;
      if (i + 1 >= argc) bad_arg(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--network") {
      args.network = value();
    } else if (flag == "--accelerator") {
      args.accelerator = value();
    } else if (flag == "--objective") {
      args.objective = value();
    } else if (flag == "--batch") {
      args.batch = parse_int(argv[0], flag, value(), 1, 1 << 20);
    } else if (flag == "--sram-kib") {
      args.sram_kib = parse_int(argv[0], flag, value(), 1, 1 << 24);
    } else if (flag == "--pe") {
      args.pe =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 4096));
    } else if (flag == "--clock-mhz") {
      args.clock_mhz = parse_double(argv[0], flag, value(), 1e-3, 1e6);
    } else if (flag == "--no-compression") {
      args.no_compression = true;
    } else if (flag == "--huffman") {
      args.huffman = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--plan") {
      args.show_plan = true;
    } else if (flag == "--dot") {
      args.dot_file = value();
    } else if (flag == "--trace") {
      args.trace_file = value();
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--critpath") {
      args.critpath = true;
    } else if (flag == "--trace-flows") {
      args.trace_flows = true;
    } else if (flag == "--slack-hints") {
      args.slack_hints_file = value();
    } else if (flag == "--faults") {
      args.faults_file = value();
    } else if (flag == "--fault-kill") {
      args.fault_kill = parse_double(argv[0], flag, value(), 0.0, 0.95);
    } else if (flag == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(
          argv[0], flag, value(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (flag == "--isa") {
      // Kernel/codec dispatch override, same values as MOCHA_KERNEL_ISA.
      // Parse errors are a CLI problem (exit 2); an unsupported-but-valid
      // ISA is a host/build problem and stays the hard MOCHA_CHECK.
      const std::string text = value();
      mocha::util::KernelIsa isa;
      if (!mocha::util::parse_isa(text, &isa)) {
        bad_arg(argv[0], "--isa expects scalar|avx2|neon, got '" + text + "'");
      }
      mocha::util::force_isa(isa);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
    } else {
      bad_arg(argv[0], "unknown flag: " + flag);
    }
    if (have_inline && !took_value) {
      bad_arg(argv[0], flag + " does not take a value");
    }
  }
  if (!args.faults_file.empty() && args.fault_kill > 0.0) {
    bad_arg(argv[0], "--faults and --fault-kill are mutually exclusive");
  }
  if (args.trace_flows && args.trace_file.empty()) {
    bad_arg(argv[0], "--trace-flows requires --trace");
  }
  if (!args.slack_hints_file.empty() && args.accelerator != "mocha") {
    bad_arg(argv[0], "--slack-hints only applies to --accelerator mocha");
  }
  return args;
}

}  // namespace

namespace {

/// Loads a mocha.hints.v1 document (written by `mocha_critpath --emit-hints`)
/// into a per-layer criticality vector for MorphOptions. Any structural
/// problem is a CLI-input error: explain on stderr, return false.
bool load_slack_hints(const std::string& path, const mocha::nn::Network& net,
                      std::vector<double>* out) {
  using mocha::util::JsonValue;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read slack hints " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  try {
    doc = mocha::util::parse_json(buffer.str());
  } catch (const mocha::CheckFailure& e) {
    std::cerr << "error: bad slack hints " << path << ": " << e.what() << "\n";
    return false;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "mocha.hints.v1") {
    std::cerr << "error: " << path << " is not a mocha.hints.v1 document\n";
    return false;
  }
  const JsonValue* hint_net = doc.find("network");
  if (hint_net != nullptr && hint_net->string != net.name) {
    // Stale hints silently biasing the wrong network would be a debugging
    // trap; a mismatch is a hard error, not a warning.
    std::cerr << "error: slack hints are for network '" << hint_net->string
              << "', simulating '" << net.name << "'\n";
    return false;
  }
  const JsonValue* layers = doc.find("layers");
  if (layers == nullptr || !layers->is_array()) {
    std::cerr << "error: " << path << " has no layers array\n";
    return false;
  }
  std::vector<double> hints(net.layers.size(), 0.0);
  for (const JsonValue& entry : layers->array) {
    const JsonValue* layer = entry.find("layer");
    const JsonValue* crit = entry.find("criticality");
    if (layer == nullptr || crit == nullptr) {
      std::cerr << "error: " << path
                << ": each layer entry needs 'layer' and 'criticality'\n";
      return false;
    }
    const double idx = layer->number;
    if (idx < 0 || idx >= static_cast<double>(hints.size()) ||
        idx != static_cast<double>(static_cast<std::size_t>(idx))) {
      std::cerr << "error: " << path << ": layer index " << idx
                << " outside network (" << hints.size() << " layers)\n";
      return false;
    }
    if (!std::isfinite(crit->number) || crit->number < 0.0 ||
        crit->number > 1.0) {
      std::cerr << "error: " << path << ": criticality " << crit->number
                << " outside [0, 1]\n";
      return false;
    }
    hints[static_cast<std::size_t>(idx)] = crit->number;
  }
  *out = std::move(hints);
  return true;
}

int run(const Args& args) {
  using namespace mocha;

  nn::Network net;
  if (args.network == "alexnet") {
    net = nn::make_alexnet();
  } else if (args.network == "vgg16") {
    net = nn::make_vgg16();
  } else if (args.network == "lenet5") {
    net = nn::make_lenet5();
  } else if (args.network == "nin") {
    net = nn::make_nin();
  } else if (args.network == "mobilenet") {
    net = nn::make_mobilenet_v1();
  } else {
    std::cerr << "unknown network: " << args.network << "\n";
    return 2;
  }

  core::Objective objective = core::Objective::EnergyDelayProduct;
  if (args.objective == "cycles") {
    objective = core::Objective::Cycles;
  } else if (args.objective == "energy") {
    objective = core::Objective::Energy;
  } else if (args.objective != "edp") {
    std::cerr << "unknown objective: " << args.objective << "\n";
    return 2;
  }

  // Fault spec, if any — parsed once; the random scenario is drawn per
  // config inside customize() so it matches whichever base geometry the
  // selected accelerator uses.
  bool inject = !args.faults_file.empty() || args.fault_kill > 0.0;
  fault::FaultModel file_faults;
  if (!args.faults_file.empty()) {
    std::ifstream in(args.faults_file);
    if (!in) {
      std::cerr << "error: cannot read fault spec " << args.faults_file
                << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      file_faults = fault::FaultModel::from_json(buffer.str());
    } catch (const CheckFailure& e) {
      std::cerr << "error: bad fault spec " << args.faults_file << ": "
                << e.what() << "\n";
      return 2;
    }
  }

  std::string fault_summary;  // for the manifest; set by customize()
  auto customize = [&](fabric::FabricConfig config) {
    if (args.sram_kib > 0) config.sram_bytes = args.sram_kib * 1024;
    if (args.pe > 0) config.pe_rows = config.pe_cols = args.pe;
    if (args.clock_mhz > 0) config.clock_ghz = args.clock_mhz / 1000.0;
    if (inject) {
      const fault::FaultModel faults =
          args.faults_file.empty()
              ? fault::FaultModel::random_scenario(config, args.fault_kill,
                                                   args.fault_seed)
              : file_faults;
      fault_summary = faults.summary(config);
      if (args.metrics) fault::record_metrics(config, faults);
      config = fault::degraded_config(config, faults);
    }
    return config;
  };

  if (args.metrics) obs::MetricsRegistry::global().set_enabled(true);
  // The session flushes to disk when it goes out of scope, after the run.
  std::unique_ptr<obs::TraceSession> trace;
  if (!args.trace_file.empty()) {
    trace = std::make_unique<obs::TraceSession>(args.trace_file);
    // Dependence-edge flow events are opt-in: they roughly double the event
    // count and older trace consumers may not expect ph:"s"/"f" records.
    if (args.trace_flows) trace->set_sim_flows(true);
  }

  // Ctrl-C / SIGTERM mid-simulation: flush the trace collected so far (the
  // write is atomic tmp+rename, so an interrupted run still leaves a
  // parseable document) and exit cleanly. A second signal force-kills.
  // The mutex closes a shutdown race: a signal landing while the main
  // thread is already inside the end-of-run trace.reset() must not _Exit
  // until that final write has hit disk.
  std::mutex trace_mu;
  serve::SignalDrain drain([&trace, &trace_mu] {
    std::lock_guard<std::mutex> lock(trace_mu);
    if (trace) trace->flush();
    std::cerr << "mocha_sim: interrupted; partial trace flushed\n";
  });

  // The config the selected accelerator actually ran with, for the manifest.
  fabric::FabricConfig used_config = customize(fabric::mocha_default_config());

  core::RunReport report;
  if (args.accelerator == "mocha") {
    core::MorphOptions options;
    options.objective = objective;
    options.allow_compression = !args.no_compression;
    options.allow_huffman = args.huffman;
    if (!args.slack_hints_file.empty() &&
        !load_slack_hints(args.slack_hints_file, net,
                          &options.layer_criticality)) {
      return 2;
    }
    const core::Accelerator acc(
        customize(fabric::mocha_default_config()), model::default_tech(),
        std::make_shared<core::MorphController>(model::default_tech(),
                                                options));
    report = acc.run(net, {}, args.batch);
    used_config = acc.config();
    if (args.show_plan || !args.dot_file.empty()) {
      const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
      const auto plan = acc.plan(net, stats, args.batch);
      if (args.show_plan) {
        for (std::size_t i = 0; i < plan.layers.size(); ++i) {
          std::cerr << net.layers[i].name << ": " << plan.layers[i].summary()
                    << "\n";
        }
      }
      if (!args.dot_file.empty()) {
        // Export the first scheduled group's executed task graph.
        const auto group = plan.fusion_groups().front();
        dataflow::BuiltSchedule built = dataflow::build_group_schedule(
            net, plan, group, acc.config(), stats, args.batch);
        sim::Engine(built.layout.specs).run(built.graph);
        std::ofstream out(args.dot_file);
        out << sim::to_dot(built.graph, built.layout.specs);
        std::cerr << "wrote " << args.dot_file << " ("
                  << built.graph.size() << " tasks)\n";
      }
    }
  } else if (args.accelerator == "nextbest") {
    baseline::NextBest best =
        baseline::next_best(net, model::default_tech(), objective);
    used_config =
        fabric::baseline_config(baseline::strategy_name(best.strategy));
    report = std::move(best.report);
  } else {
    baseline::Strategy strategy;
    if (args.accelerator == "tiling") {
      strategy = baseline::Strategy::TilingOnly;
    } else if (args.accelerator == "merge") {
      strategy = baseline::Strategy::MergeOnly;
    } else if (args.accelerator == "parallel") {
      strategy = baseline::Strategy::ParallelOnly;
    } else {
      std::cerr << "unknown accelerator: " << args.accelerator << "\n";
      return 2;
    }
    const core::Accelerator acc = baseline::make_baseline_accelerator(
        strategy, customize(fabric::baseline_config(args.accelerator)),
        model::default_tech(), objective);
    report = acc.run(net, {}, args.batch);
    used_config = acc.config();
  }

  {
    // Flush the trace file before reporting, holding the drain mutex so a
    // signal arriving mid-write waits for the complete document.
    std::lock_guard<std::mutex> lock(trace_mu);
    trace.reset();
  }

  obs::RunManifest manifest = obs::RunManifest::current("mocha_sim");
  manifest.network = args.network;
  manifest.accelerator = report.accelerator;
  manifest.objective = args.objective;
  manifest.batch = args.batch;
  manifest.sram_bytes = used_config.sram_bytes;
  manifest.pe_rows = used_config.pe_rows;
  manifest.pe_cols = used_config.pe_cols;
  manifest.clock_ghz = used_config.clock_ghz;
  manifest.fault_scenario = fault_summary;

  obs::MetricsSnapshot snapshot;
  if (args.metrics) snapshot = obs::MetricsRegistry::global().snapshot();

  if (args.json) {
    std::cout << core::report_to_json(report, &manifest,
                                      args.metrics ? &snapshot : nullptr,
                                      args.critpath)
              << "\n";
    return 0;
  }

  util::Table table({"group", "plan", "cycles", "GOPS", "uJ", "peak KiB"});
  for (const core::GroupReport& group : report.groups) {
    table.row()
        .cell(group.label)
        .cell(group.plan_summary)
        .cell(static_cast<long long>(group.cycles))
        .cell(group.throughput_gops(report.clock_ghz))
        .cell(group.energy.total_pj() / 1e6)
        .cell(static_cast<double>(group.peak_sram_bytes) / 1024.0, 1);
  }
  table.print(std::cout,
              report.accelerator + " / " + report.network + " (batch " +
                  std::to_string(args.batch) + ")");
  std::cout << "\ntotal: " << report.total_cycles << " cycles, "
            << report.runtime_ms() << " ms, " << report.throughput_gops()
            << " GOPS, " << report.efficiency_gops_per_w() << " GOPS/W, "
            << report.total_energy_pj * 1e-9 << " mJ, peak scratchpad "
            << static_cast<double>(report.peak_sram_bytes) / 1024.0
            << " KiB, sram_ok=" << (report.sram_ok ? "yes" : "no") << "\n";
  if (args.critpath) {
    // Bottleneck ranking: groups by cycle share, with each group's dominant
    // critical-path task kind and its contention gap (schedule makespan
    // minus the dependence-only critical path — cycles queueing would
    // reclaim with more resources).
    std::vector<std::size_t> order(report.groups.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return report.groups[a].cycles > report.groups[b].cycles;
                     });
    std::cout << "\ncritical-path bottlenecks (top "
              << std::min<std::size_t>(order.size(), 5) << " of "
              << order.size() << " groups):\n";
    for (std::size_t rank = 0; rank < order.size() && rank < 5; ++rank) {
      const core::GroupReport& group = report.groups[order[rank]];
      const double share =
          report.total_cycles == 0
              ? 0.0
              : 100.0 * static_cast<double>(group.cycles) /
                    static_cast<double>(report.total_cycles);
      std::cout << "  " << group.label << ": " << group.cycles << " cycles ("
                << share << "% of total), dominant kind "
                << group.critpath.dominant_kind << ", contention gap "
                << group.critpath.contention_gap << " cycles\n";
    }
  }
  if (args.metrics) {
    std::cout << "\nmetrics: " << snapshot.to_json() << "\n";
  }
  return report.sram_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    return run(args);
  } catch (const mocha::CheckFailure& e) {
    // An invariant tripped past argument validation — report it like a tool,
    // not a crash dump, and exit non-zero.
    std::cerr << "mocha_sim: " << e.what() << "\n";
    return 3;
  }
}
