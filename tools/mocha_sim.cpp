// mocha_sim — command-line front end for the simulator.
//
//   mocha_sim [--network alexnet|vgg16|lenet5|nin|mobilenet] [--accelerator mocha|tiling|
//             merge|parallel|nextbest] [--objective edp|cycles|energy]
//             [--batch N] [--sram-kib N] [--pe N] [--clock-mhz N]
//             [--no-compression] [--huffman] [--json] [--plan]
//             [--trace FILE] [--metrics]
//
// Examples:
//   mocha_sim --network alexnet                         # MOCHA, defaults
//   mocha_sim --network vgg16 --accelerator nextbest    # best fixed baseline
//   mocha_sim --network alexnet --batch 8 --json        # machine-readable
//   mocha_sim --network alexnet --trace trace.json      # chrome://tracing
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <fstream>

#include "baseline/baselines.hpp"
#include "core/accelerator.hpp"
#include "core/morph.hpp"
#include "core/report_json.hpp"
#include "dataflow/schedule.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/dot.hpp"
#include "util/table.hpp"

namespace {

struct Args {
  std::string network = "alexnet";
  std::string accelerator = "mocha";
  std::string objective = "edp";
  mocha::nn::Index batch = 1;
  std::int64_t sram_kib = 0;  // 0 = default
  int pe = 0;                 // 0 = default
  double clock_mhz = 0;       // 0 = default
  bool no_compression = false;
  bool huffman = false;
  bool json = false;
  bool show_plan = false;
  bool metrics = false;   // collect and print a MetricsRegistry snapshot
  std::string dot_file;   // export the first group's schedule as Graphviz
  std::string trace_file; // write a Chrome trace-event JSON of the run
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--network alexnet|vgg16|lenet5|nin|mobilenet] [--accelerator "
         "mocha|tiling|merge|parallel|nextbest]\n"
         "       [--objective edp|cycles|energy] [--batch N] [--sram-kib N] "
         "[--pe N] [--clock-mhz N]\n"
         "       [--no-compression] [--huffman] [--json] [--plan] "
         "[--dot FILE]\n"
         "       [--trace FILE] [--metrics]\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--network") {
      args.network = need(i);
    } else if (flag == "--accelerator") {
      args.accelerator = need(i);
    } else if (flag == "--objective") {
      args.objective = need(i);
    } else if (flag == "--batch") {
      args.batch = std::stoll(need(i));
    } else if (flag == "--sram-kib") {
      args.sram_kib = std::stoll(need(i));
    } else if (flag == "--pe") {
      args.pe = std::stoi(need(i));
    } else if (flag == "--clock-mhz") {
      args.clock_mhz = std::stod(need(i));
    } else if (flag == "--no-compression") {
      args.no_compression = true;
    } else if (flag == "--huffman") {
      args.huffman = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--plan") {
      args.show_plan = true;
    } else if (flag == "--dot") {
      args.dot_file = need(i);
    } else if (flag == "--trace") {
      args.trace_file = need(i);
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      usage(argv[0]);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mocha;
  const Args args = parse(argc, argv);

  nn::Network net;
  if (args.network == "alexnet") {
    net = nn::make_alexnet();
  } else if (args.network == "vgg16") {
    net = nn::make_vgg16();
  } else if (args.network == "lenet5") {
    net = nn::make_lenet5();
  } else if (args.network == "nin") {
    net = nn::make_nin();
  } else if (args.network == "mobilenet") {
    net = nn::make_mobilenet_v1();
  } else {
    std::cerr << "unknown network: " << args.network << "\n";
    return 2;
  }

  core::Objective objective = core::Objective::EnergyDelayProduct;
  if (args.objective == "cycles") {
    objective = core::Objective::Cycles;
  } else if (args.objective == "energy") {
    objective = core::Objective::Energy;
  } else if (args.objective != "edp") {
    std::cerr << "unknown objective: " << args.objective << "\n";
    return 2;
  }

  auto customize = [&](fabric::FabricConfig config) {
    if (args.sram_kib > 0) config.sram_bytes = args.sram_kib * 1024;
    if (args.pe > 0) config.pe_rows = config.pe_cols = args.pe;
    if (args.clock_mhz > 0) config.clock_ghz = args.clock_mhz / 1000.0;
    return config;
  };

  if (args.metrics) obs::MetricsRegistry::global().set_enabled(true);
  // The session flushes to disk when it goes out of scope, after the run.
  std::unique_ptr<obs::TraceSession> trace;
  if (!args.trace_file.empty()) {
    trace = std::make_unique<obs::TraceSession>(args.trace_file);
  }

  // The config the selected accelerator actually ran with, for the manifest.
  fabric::FabricConfig used_config = customize(fabric::mocha_default_config());

  core::RunReport report;
  if (args.accelerator == "mocha") {
    core::MorphOptions options;
    options.objective = objective;
    options.allow_compression = !args.no_compression;
    options.allow_huffman = args.huffman;
    const core::Accelerator acc(
        customize(fabric::mocha_default_config()), model::default_tech(),
        std::make_shared<core::MorphController>(model::default_tech(),
                                                options));
    report = acc.run(net, {}, args.batch);
    used_config = acc.config();
    if (args.show_plan || !args.dot_file.empty()) {
      const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
      const auto plan = acc.plan(net, stats, args.batch);
      if (args.show_plan) {
        for (std::size_t i = 0; i < plan.layers.size(); ++i) {
          std::cerr << net.layers[i].name << ": " << plan.layers[i].summary()
                    << "\n";
        }
      }
      if (!args.dot_file.empty()) {
        // Export the first scheduled group's executed task graph.
        const auto group = plan.fusion_groups().front();
        dataflow::BuiltSchedule built = dataflow::build_group_schedule(
            net, plan, group, acc.config(), stats, args.batch);
        sim::Engine(built.layout.specs).run(built.graph);
        std::ofstream out(args.dot_file);
        out << sim::to_dot(built.graph, built.layout.specs);
        std::cerr << "wrote " << args.dot_file << " ("
                  << built.graph.size() << " tasks)\n";
      }
    }
  } else if (args.accelerator == "nextbest") {
    baseline::NextBest best =
        baseline::next_best(net, model::default_tech(), objective);
    used_config =
        fabric::baseline_config(baseline::strategy_name(best.strategy));
    report = std::move(best.report);
  } else {
    baseline::Strategy strategy;
    if (args.accelerator == "tiling") {
      strategy = baseline::Strategy::TilingOnly;
    } else if (args.accelerator == "merge") {
      strategy = baseline::Strategy::MergeOnly;
    } else if (args.accelerator == "parallel") {
      strategy = baseline::Strategy::ParallelOnly;
    } else {
      std::cerr << "unknown accelerator: " << args.accelerator << "\n";
      return 2;
    }
    const core::Accelerator acc = baseline::make_baseline_accelerator(
        strategy, customize(fabric::baseline_config(args.accelerator)),
        model::default_tech(), objective);
    report = acc.run(net, {}, args.batch);
    used_config = acc.config();
  }

  trace.reset();  // flush the trace file before reporting

  obs::RunManifest manifest = obs::RunManifest::current("mocha_sim");
  manifest.network = args.network;
  manifest.accelerator = report.accelerator;
  manifest.objective = args.objective;
  manifest.batch = args.batch;
  manifest.sram_bytes = used_config.sram_bytes;
  manifest.pe_rows = used_config.pe_rows;
  manifest.pe_cols = used_config.pe_cols;
  manifest.clock_ghz = used_config.clock_ghz;

  obs::MetricsSnapshot snapshot;
  if (args.metrics) snapshot = obs::MetricsRegistry::global().snapshot();

  if (args.json) {
    std::cout << core::report_to_json(report, &manifest,
                                      args.metrics ? &snapshot : nullptr)
              << "\n";
    return 0;
  }

  util::Table table({"group", "plan", "cycles", "GOPS", "uJ", "peak KiB"});
  for (const core::GroupReport& group : report.groups) {
    table.row()
        .cell(group.label)
        .cell(group.plan_summary)
        .cell(static_cast<long long>(group.cycles))
        .cell(group.throughput_gops(report.clock_ghz))
        .cell(group.energy.total_pj() / 1e6)
        .cell(static_cast<double>(group.peak_sram_bytes) / 1024.0, 1);
  }
  table.print(std::cout,
              report.accelerator + " / " + report.network + " (batch " +
                  std::to_string(args.batch) + ")");
  std::cout << "\ntotal: " << report.total_cycles << " cycles, "
            << report.runtime_ms() << " ms, " << report.throughput_gops()
            << " GOPS, " << report.efficiency_gops_per_w() << " GOPS/W, "
            << report.total_energy_pj * 1e-9 << " mJ, peak scratchpad "
            << static_cast<double>(report.peak_sram_bytes) / 1024.0
            << " KiB, sram_ok=" << (report.sram_ok ? "yes" : "no") << "\n";
  if (args.metrics) {
    std::cout << "\nmetrics: " << snapshot.to_json() << "\n";
  }
  return report.sram_ok ? 0 : 1;
}
