// trace_validate — structural validator for Chrome trace-event JSON.
//
//   trace_validate FILE [--critpath REPORT]
//
// Exits 0 iff FILE parses as a trace document whose simulated-time lanes
// (pid 1) hold monotone, non-overlapping complete events, and whose flow
// events (ph "s"/"f", emitted by --trace-flows / mocha_critpath) pair up
// by id with both endpoints anchored inside an existing complete event on
// the same lane. With --critpath, additionally cross-checks a
// mocha.critpath.v1 report against the trace: every executed task on a
// group's critical chain must appear as a complete event carrying that
// {g, task} args pair. Paired with the trace_smoke / critpath_smoke ctest
// entries.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json_parse.hpp"

namespace {

using mocha::util::JsonValue;

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

struct Span {
  double ts, dur;
};

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--critpath") {
      if (i + 1 >= argc || report_path != nullptr) {
        std::cerr << "usage: trace_validate FILE [--critpath REPORT]\n";
        return 2;
      }
      report_path = argv[++i];
    } else if (trace_path == nullptr) {
      trace_path = argv[i];
    } else {
      std::cerr << "usage: trace_validate FILE [--critpath REPORT]\n";
      return 2;
    }
  }
  if (trace_path == nullptr) {
    std::cerr << "usage: trace_validate FILE [--critpath REPORT]\n";
    return 2;
  }
  std::string text;
  if (!read_file(trace_path, &text)) {
    std::cerr << "cannot open " << trace_path << "\n";
    return 1;
  }

  try {
    const JsonValue doc = mocha::util::parse_json(text);
    const JsonValue& events = doc.at("traceEvents");
    if (!events.is_array()) {
      std::cerr << "traceEvents is not an array\n";
      return 1;
    }

    // Per (pid, tid) complete-event spans; sim lanes (pid 1) additionally
    // checked for overlap. Args-stamped events keyed by (g, task) for the
    // critpath cross-check.
    std::map<std::pair<int, int>, std::vector<Span>> lanes;
    std::set<std::pair<std::int64_t, std::int64_t>> group_tasks;
    struct FlowEnd {
      double ts = 0;
      int pid = 0, tid = 0;
      bool seen = false;
    };
    std::map<double, std::pair<FlowEnd, FlowEnd>> flows;  // id -> (s, f)
    std::size_t complete = 0, flow_events = 0;
    std::map<int, std::vector<Span>> sim_lanes;
    for (const JsonValue& e : events.array) {
      const std::string& ph = e.at("ph").string;
      if (ph == "s" || ph == "f") {
        ++flow_events;
        e.at("name");
        e.at("cat");
        FlowEnd end;
        end.ts = e.at("ts").number;
        end.pid = static_cast<int>(e.at("pid").number);
        end.tid = static_cast<int>(e.at("tid").number);
        end.seen = true;
        auto& pair = flows[e.at("id").number];
        FlowEnd& slot = ph == "s" ? pair.first : pair.second;
        if (slot.seen) {
          std::cerr << "duplicate flow " << ph << " for id "
                    << e.at("id").number << "\n";
          return 1;
        }
        if (ph == "f" && (e.find("bp") == nullptr ||
                          e.at("bp").string != "e")) {
          std::cerr << "flow finish without bp:e for id " << e.at("id").number
                    << "\n";
          return 1;
        }
        slot = end;
        continue;
      }
      if (ph != "X") continue;
      ++complete;
      e.at("name");
      e.at("cat");
      const double ts = e.at("ts").number;
      const double dur = e.at("dur").number;
      if (ts < 0 || dur < 0) {
        std::cerr << "negative ts/dur on event '" << e.at("name").string
                  << "'\n";
        return 1;
      }
      const int pid = static_cast<int>(e.at("pid").number);
      const int tid = static_cast<int>(e.at("tid").number);
      lanes[{pid, tid}].push_back({ts, dur});
      if (pid == 1) sim_lanes[tid].push_back({ts, dur});
      if (const JsonValue* args = e.find("args")) {
        const JsonValue* g = args->find("g");
        const JsonValue* task = args->find("task");
        if (g != nullptr && task != nullptr) {
          group_tasks.emplace(static_cast<std::int64_t>(g->number),
                              static_cast<std::int64_t>(task->number));
        }
      }
    }
    if (complete == 0 || sim_lanes.empty()) {
      std::cerr << "no simulated-time events — trace is empty\n";
      return 1;
    }
    for (auto& [tid, spans] : sim_lanes) {
      std::sort(spans.begin(), spans.end(),
                [](const Span& a, const Span& b) { return a.ts < b.ts; });
      for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].ts < spans[i - 1].ts + spans[i - 1].dur) {
          std::cerr << "overlapping events on sim lane tid " << tid
                    << " near ts " << spans[i].ts << "\n";
          return 1;
        }
      }
    }

    // Every flow must have both endpoints, start before finish, and each
    // endpoint must land inside some complete event on its lane — a flow
    // pointing at empty timeline means the emitter and the X events
    // disagree about where tasks ran.
    for (auto& [lane, spans] : lanes) {
      (void)lane;
      std::sort(spans.begin(), spans.end(),
                [](const Span& a, const Span& b) { return a.ts < b.ts; });
    }
    auto anchored = [&](const FlowEnd& end) {
      const auto it = lanes.find({end.pid, end.tid});
      if (it == lanes.end()) return false;
      const std::vector<Span>& spans = it->second;
      // First span starting after end.ts; the one before (if any) must
      // cover it. Flow endpoints sit at task boundaries, so containment is
      // inclusive on both ends.
      auto up = std::upper_bound(
          spans.begin(), spans.end(), end.ts,
          [](double ts, const Span& s) { return ts < s.ts; });
      while (up != spans.begin()) {
        --up;
        if (end.ts <= up->ts + up->dur) return end.ts >= up->ts;
      }
      return false;
    };
    for (const auto& [id, pair] : flows) {
      const auto& [s, f] = pair;
      if (!s.seen || !f.seen) {
        std::cerr << "unpaired flow id " << id << " (" << (s.seen ? "s" : "")
                  << (f.seen ? "f" : "") << " only)\n";
        return 1;
      }
      if (f.ts < s.ts) {
        std::cerr << "flow id " << id << " finishes at " << f.ts
                  << " before it starts at " << s.ts << "\n";
        return 1;
      }
      if (!anchored(s) || !anchored(f)) {
        std::cerr << "flow id " << id
                  << " endpoint not inside any complete event\n";
        return 1;
      }
    }

    std::size_t checked_steps = 0;
    if (report_path != nullptr) {
      std::string report_text;
      if (!read_file(report_path, &report_text)) {
        std::cerr << "cannot open " << report_path << "\n";
        return 1;
      }
      const JsonValue report = mocha::util::parse_json(report_text);
      const JsonValue* schema = report.find("schema");
      if (schema == nullptr || schema->string != "mocha.critpath.v1") {
        std::cerr << report_path << " is not a mocha.critpath.v1 report\n";
        return 1;
      }
      for (const JsonValue& group : report.at("groups").array) {
        const std::int64_t gi =
            static_cast<std::int64_t>(group.at("group").number);
        for (const JsonValue& step : group.at("path").array) {
          // Zero-duration steps (barriers) are chain glue the tracer
          // deliberately omits; every step that took time must be in the
          // trace under this group's args stamp.
          if (step.at("finish").number <= step.at("start").number) continue;
          const std::int64_t task =
              static_cast<std::int64_t>(step.at("task").number);
          if (group_tasks.count({gi, task}) == 0) {
            std::cerr << "critpath step task " << task << " of group " << gi
                      << " missing from trace\n";
            return 1;
          }
          ++checked_steps;
        }
      }
      if (checked_steps == 0) {
        std::cerr << "critpath report has no timed steps to cross-check\n";
        return 1;
      }
    }

    std::cout << trace_path << ": " << complete << " events, "
              << sim_lanes.size() << " sim lanes, all monotone";
    if (flow_events > 0) {
      std::cout << ", " << flows.size() << " flows anchored";
    }
    if (report_path != nullptr) {
      std::cout << ", " << checked_steps << " critpath steps matched";
    }
    std::cout << "\n";
  } catch (const std::exception& e) {
    std::cerr << "invalid trace document: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
