// trace_validate — structural validator for Chrome trace-event JSON.
//
//   trace_validate FILE
//
// Exits 0 iff FILE parses as a trace document whose simulated-time lanes
// (pid 1) hold monotone, non-overlapping complete events. Paired with the
// trace_smoke ctest entry: mocha_sim --trace writes the file, this checks it.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/json_parse.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_validate FILE\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  using mocha::util::JsonValue;
  try {
    const JsonValue doc = mocha::util::parse_json(ss.str());
    const JsonValue& events = doc.at("traceEvents");
    if (!events.is_array()) {
      std::cerr << "traceEvents is not an array\n";
      return 1;
    }

    struct Span {
      double ts, dur;
    };
    std::map<int, std::vector<Span>> sim_lanes;
    std::size_t complete = 0;
    for (const JsonValue& e : events.array) {
      if (e.at("ph").string != "X") continue;
      ++complete;
      // Every complete event needs the full Chrome shape.
      e.at("name");
      e.at("cat");
      const double ts = e.at("ts").number;
      const double dur = e.at("dur").number;
      if (ts < 0 || dur < 0) {
        std::cerr << "negative ts/dur on event '" << e.at("name").string
                  << "'\n";
        return 1;
      }
      if (static_cast<int>(e.at("pid").number) == 1) {
        sim_lanes[static_cast<int>(e.at("tid").number)].push_back({ts, dur});
      }
    }
    if (complete == 0 || sim_lanes.empty()) {
      std::cerr << "no simulated-time events — trace is empty\n";
      return 1;
    }
    for (auto& [tid, spans] : sim_lanes) {
      std::sort(spans.begin(), spans.end(),
                [](const Span& a, const Span& b) { return a.ts < b.ts; });
      for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].ts < spans[i - 1].ts + spans[i - 1].dur) {
          std::cerr << "overlapping events on sim lane tid " << tid
                    << " near ts " << spans[i].ts << "\n";
          return 1;
        }
      }
    }
    std::cout << argv[1] << ": " << complete << " events, "
              << sim_lanes.size() << " sim lanes, all monotone\n";
  } catch (const std::exception& e) {
    std::cerr << "invalid trace document: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
