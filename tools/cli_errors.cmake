# ctest driver for CLI robustness: malformed command lines must exit with
# status 2 and an explanation on stderr — never abort, never run anyway.
#
# Invoked by the `cli_errors` test as
#   cmake -DSIM=<mocha_sim> -DBENCH=<mocha_bench> -DFIG=<fig_degradation>
#         -DCRITPATH=<mocha_critpath> -DSERVE=<mocha_serve> -P cli_errors.cmake

# Runs `exe` with the remaining arguments and asserts exit code 2. When
# `pattern` is non-empty, stderr must match it (e.g. "usage" proves the
# parser rejected the flag rather than something downstream blowing up).
function(expect_rejected exe pattern)
  execute_process(COMMAND ${exe} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 2)
    message(FATAL_ERROR
            "${exe} ${ARGN}: expected exit 2, got '${code}'\nstderr:\n${err}")
  endif()
  if(pattern AND NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
            "${exe} ${ARGN}: stderr does not match '${pattern}':\n${err}")
  endif()
endfunction()

# --- mocha_sim: flag parsing ---
expect_rejected(${SIM} "usage" --frobnicate)
expect_rejected(${SIM} "usage" --batch)                 # missing value
expect_rejected(${SIM} "usage" --batch notanumber)
expect_rejected(${SIM} "usage" --batch=)                # empty inline value
expect_rejected(${SIM} "usage" --batch 4x)              # trailing junk
expect_rejected(${SIM} "usage" --batch 0)               # below range
expect_rejected(${SIM} "usage" --batch 99999999999999999999)  # stoll overflow
expect_rejected(${SIM} "usage" --pe=-4)
expect_rejected(${SIM} "usage" --clock-mhz nan)         # non-finite
expect_rejected(${SIM} "usage" --clock-mhz 1e99)        # out of range
expect_rejected(${SIM} "usage" --json=yes)              # boolean takes no value
expect_rejected(${SIM} "usage" --fault-kill 2.0)
expect_rejected(${SIM} "usage" --fault-seed -1)
expect_rejected(${SIM} "mutually exclusive" --faults f.json --fault-kill 0.5)
expect_rejected(${SIM} "usage" --isa)                   # missing value
expect_rejected(${SIM} "usage" --isa avx9)              # not an ISA name
expect_rejected(${SIM} "usage" -h)                      # help goes to stderr, exit 2
expect_rejected(${SIM} "requires --trace" --trace-flows)  # flows need a file
expect_rejected(${SIM} "only applies" --slack-hints h.json --accelerator tiling)
expect_rejected(${SIM} "cannot read" --slack-hints ${CMAKE_CURRENT_LIST_DIR}/no-such-hints.json)

# --- mocha_sim: validated values past the parser ---
expect_rejected(${SIM} "unknown network" --network bogus)
expect_rejected(${SIM} "unknown objective" --objective speed)
expect_rejected(${SIM} "unknown accelerator" --accelerator tpu)
expect_rejected(${SIM} "cannot read" --faults ${CMAKE_CURRENT_LIST_DIR}/no-such-file.json)

# --- mocha_bench ---
expect_rejected(${BENCH} "usage" --frobnicate)
expect_rejected(${BENCH} "usage" --out)                 # missing value
expect_rejected(${BENCH} "usage" --out=)                # empty inline value
expect_rejected(${BENCH} "usage" extra-positional)
expect_rejected(${BENCH} "usage" --threads 0)           # below range
expect_rejected(${BENCH} "usage" --threads 1,,2)        # empty item
expect_rejected(${BENCH} "usage" --threads two)         # not a number
expect_rejected(${BENCH} "usage" --isa avx9)            # not an ISA name

# --- mocha_critpath ---
expect_rejected(${CRITPATH} "usage" --frobnicate)
expect_rejected(${CRITPATH} "usage" --what-if)            # missing value
expect_rejected(${CRITPATH} "usage" --what-if dram+0)     # add must be positive
expect_rejected(${CRITPATH} "usage" --what-if pe_groups*0)  # zero scale
expect_rejected(${CRITPATH} "usage" --what-if bogus/2)    # unknown task kind
expect_rejected(${CRITPATH} "usage" --top-k 0)
expect_rejected(${CRITPATH} "unknown network" --network bogus)
expect_rejected(${CRITPATH} "unknown objective" --objective speed)

# --- mocha_serve: fleet flag parsing ---
expect_rejected(${SERVE} "usage" --frobnicate)
expect_rejected(${SERVE} "usage" --shards)               # missing value
expect_rejected(${SERVE} "usage" --shards 0)             # zero-width fleet
expect_rejected(${SERVE} "usage" --shards 65)            # above range
expect_rejected(${SERVE} "usage" --shards two)           # not a number
expect_rejected(${SERVE} "usage" --batch-max 0)
expect_rejected(${SERVE} "usage" --batch-max 65)
expect_rejected(${SERVE} "usage" --hedge-ms 0)
expect_rejected(${SERVE} "usage" --tenants 0)
expect_rejected(${SERVE} "usage" --canary-period-ms 0)
expect_rejected(${SERVE} "usage" --stall-ms 0)
expect_rejected(${SERVE} "usage" --kill-after 1.5)       # fraction of the run
expect_rejected(${SERVE} "usage" --no-hedge=yes)         # boolean takes no value
expect_rejected(${SERVE} "usage" --bench-shards)         # missing value
expect_rejected(${SERVE} "usage" --bench-shards 1,,2)    # empty item
expect_rejected(${SERVE} "usage" --bench-shards 0)       # zero-shard point
expect_rejected(${SERVE} "usage" --bench-shards 1,65)    # out-of-range point
expect_rejected(${SERVE} "usage" --replicas)             # missing value
expect_rejected(${SERVE} "usage" --replicas 0)           # empty replica set
expect_rejected(${SERVE} "usage" --replicas 65)          # above range
expect_rejected(${SERVE} "usage" --models 0)
expect_rejected(${SERVE} "usage" --routing-out)          # missing value
expect_rejected(${SERVE} "usage" --availability-min 1.5) # a fraction
expect_rejected(${SERVE} "usage" --bench-replicas)       # missing value
expect_rejected(${SERVE} "usage" --bench-replicas 1,,2)  # empty item
expect_rejected(${SERVE} "usage" --bench-replicas 0)     # zero-replica point
expect_rejected(${SERVE} "usage" --isa avx9)             # not an ISA name

# --- mocha_serve: cross-flag validation ---
expect_rejected(${SERVE} "out of range" --kill-shard 2 --shards 2)
expect_rejected(${SERVE} "out of range" --kill-shard 1)  # default --shards 1
expect_rejected(${SERVE} "exceeds" --fleet-faulty 3 --shards 2)
expect_rejected(${SERVE} "mutually exclusive" --shards 4 --fleet-faulty 1 --kill-shard 0)
expect_rejected(${SERVE} "requires --kill-shard" --heal-shard-after 0.5)
expect_rejected(${SERVE} "must be > --kill-after" --shards 2 --kill-shard 0
                --kill-after 0.5 --heal-shard-after 0.25)
expect_rejected(${SERVE} "needs --shards" --hedge-compare)
expect_rejected(${SERVE} "contradictory" --shards 2 --hedge-compare --no-hedge)
expect_rejected(${SERVE} "mutually exclusive" --faults f.json --fault-kill 0.5)
expect_rejected(${SERVE} "exceeds" --replicas 3 --shards 2)
expect_rejected(${SERVE} "requires --bench-out" --bench-replicas 2)

# --- fig_degradation (E15 harness) ---
expect_rejected(${FIG} "usage" --bogus)

message(STATUS "all malformed command lines rejected with exit 2")
