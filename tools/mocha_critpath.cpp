// mocha_critpath — trace-driven critical-path analysis and what-if slack
// profiling over the MOCHA planner's committed schedules.
//
//   mocha_critpath [--network alexnet|vgg16|lenet5|nin|mobilenet]
//                  [--objective edp|cycles|energy] [--batch N]
//                  [--sram-kib N] [--pe N] [--clock-mhz N]
//                  [--no-compression] [--huffman]
//                  [--what-if SPEC]... [--top-k N]
//                  [--out FILE] [--emit-hints FILE] [--trace FILE]
//                  [--isa scalar|avx2|neon]
//
// Plans the network with the morph controller, executes every fusion
// group's task graph in the discrete-event engine, and reconstructs the
// dependence graph into a critical-path report (obs/critpath.hpp): the
// schedule-critical chain, the CPM dependence bound, per-resource slack,
// and top-k bottleneck layers/kinds. Each --what-if scenario ("unbounded",
// "dram_channels+1", "codec_units*2", "reconfig/2") is answered twice —
// analytically (a [predicted, upper_bound] band, exact for unbounded) and
// by replaying the engine with the modified ResourceSpec list — and the
// two are reported side by side in a mocha.critpath.v1 JSON document.
//
// Exit codes: 0 ok, 2 bad arguments, 3 internal invariant failure,
// 5 a what-if replay landed outside its analytic band (model and engine
// disagree — the documented tolerance admits no slack there).
//
// --emit-hints writes a mocha.hints.v1 per-layer criticality file that
// `mocha_sim --slack-hints` feeds back into the planner; --trace writes a
// Chrome trace with dependence-edge flow events enabled, the critical
// chain flagged with category "critical".
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/accelerator.hpp"
#include "core/morph.hpp"
#include "dataflow/schedule.hpp"
#include "obs/critpath.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "serve/signal.hpp"
#include "sim/trace.hpp"
#include "util/cpuid.hpp"
#include "util/json.hpp"

namespace {

struct Args {
  std::string network = "alexnet";
  std::string objective = "edp";
  mocha::nn::Index batch = 1;
  std::int64_t sram_kib = 0;  // 0 = default
  int pe = 0;                 // 0 = default
  double clock_mhz = 0;       // 0 = default
  bool no_compression = false;
  bool huffman = false;
  int top_k = 5;                      // bottleneck list length
  std::vector<std::string> what_ifs;  // empty = the default sweep
  std::string out_file;               // report destination ("" = stdout)
  std::string hints_file;             // mocha.hints.v1 destination
  std::string trace_file;             // Chrome trace with flow events
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--network alexnet|vgg16|lenet5|nin|mobilenet]\n"
         "       [--objective edp|cycles|energy] [--batch N] [--sram-kib N] "
         "[--pe N] [--clock-mhz N]\n"
         "       [--no-compression] [--huffman] [--top-k N]\n"
         "       [--what-if unbounded|RES+N|RES*K|KIND/F]...\n"
         "       [--out FILE] [--emit-hints FILE] [--trace FILE] "
         "[--isa scalar|avx2|neon]\n";
  std::exit(2);
}

[[noreturn]] void bad_arg(const char* argv0, const std::string& message) {
  std::cerr << "error: " << message << "\n";
  usage(argv0);
}

/// Strict integer: whole string must parse and land inside [lo, hi].
std::int64_t parse_int(const char* argv0, const std::string& flag,
                       const std::string& text, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t value = 0;
  std::size_t used = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty()) {
    bad_arg(argv0, flag + " expects an integer, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    bad_arg(argv0, flag + "=" + text + " outside [" + std::to_string(lo) +
                       ", " + std::to_string(hi) + "]");
  }
  return value;
}

/// Strict finite double inside [lo, hi].
double parse_double(const char* argv0, const std::string& flag,
                    const std::string& text, double lo, double hi) {
  double value = 0;
  std::size_t used = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !std::isfinite(value)) {
    bad_arg(argv0, flag + " expects a number, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    std::ostringstream os;
    os << flag << "=" << text << " outside [" << lo << ", " << hi << "]";
    bad_arg(argv0, os.str());
  }
  return value;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    bool have_inline = false;
    std::string inline_value;
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        have_inline = true;
        inline_value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      }
    }
    bool took_value = false;
    auto value = [&]() -> std::string {
      took_value = true;
      if (have_inline) return inline_value;
      if (i + 1 >= argc) bad_arg(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--network") {
      args.network = value();
    } else if (flag == "--objective") {
      args.objective = value();
    } else if (flag == "--batch") {
      args.batch = parse_int(argv[0], flag, value(), 1, 1 << 20);
    } else if (flag == "--sram-kib") {
      args.sram_kib = parse_int(argv[0], flag, value(), 1, 1 << 24);
    } else if (flag == "--pe") {
      args.pe = static_cast<int>(parse_int(argv[0], flag, value(), 1, 4096));
    } else if (flag == "--clock-mhz") {
      args.clock_mhz = parse_double(argv[0], flag, value(), 1e-3, 1e6);
    } else if (flag == "--no-compression") {
      args.no_compression = true;
    } else if (flag == "--huffman") {
      args.huffman = true;
    } else if (flag == "--top-k") {
      args.top_k =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 100));
    } else if (flag == "--what-if") {
      const std::string spec = value();
      // Validate the grammar now so a typo is a CLI error, not a mid-run
      // abort after minutes of planning.
      try {
        (void)mocha::obs::parse_what_if(spec);
      } catch (const mocha::CheckFailure& e) {
        bad_arg(argv[0], e.what());
      }
      args.what_ifs.push_back(spec);
    } else if (flag == "--out") {
      args.out_file = value();
    } else if (flag == "--emit-hints") {
      args.hints_file = value();
    } else if (flag == "--trace") {
      args.trace_file = value();
    } else if (flag == "--isa") {
      const std::string text = value();
      mocha::util::KernelIsa isa;
      if (!mocha::util::parse_isa(text, &isa)) {
        bad_arg(argv[0], "--isa expects scalar|avx2|neon, got '" + text + "'");
      }
      mocha::util::force_isa(isa);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
    } else {
      bad_arg(argv[0], "unknown flag: " + flag);
    }
    if (have_inline && !took_value) {
      bad_arg(argv[0], flag + " does not take a value");
    }
  }
  return args;
}

}  // namespace

namespace {

using mocha::sim::Cycle;

/// Layer index encoded in a builder task label ("comp.L3.0.1" -> 3); tasks
/// without the marker (group barriers) attribute to the group head.
std::size_t label_layer(const std::string& label, std::size_t fallback,
                        std::size_t layer_count) {
  const std::size_t pos = label.find(".L");
  if (pos == std::string::npos) return fallback;
  const char* begin = label.c_str() + pos + 2;
  char* end = nullptr;
  const long value = std::strtol(begin, &end, 10);
  if (end == begin || value < 0 ||
      static_cast<std::size_t>(value) >= layer_count) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// Everything the report needs about one executed fusion group.
struct GroupAnalysis {
  std::size_t index = 0;
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;
  std::string label;
  Cycle makespan = 0;
  std::int64_t reconfig_cycles = 0;
  mocha::obs::CritPathReport report;
  std::vector<mocha::obs::WhatIfOutcome> outcomes;
  /// (layer, duration) per schedule-critical chain step, label-attributed.
  std::vector<std::pair<std::size_t, Cycle>> step_layers;
  /// Kind and [start, finish) of every chain step, for the JSON path array.
  std::vector<mocha::sim::TaskKind> step_kinds;
  std::vector<std::pair<Cycle, Cycle>> step_times;
  std::vector<std::string> step_labels;
};

/// Aggregated view of one what-if across all groups: group makespans are
/// summed (groups execute back to back), the fixed per-group reconfig
/// charge rides along — scaled exactly for a reconfig speedup scenario,
/// unchanged otherwise.
struct WhatIfTotal {
  std::string name;
  bool applicable = false;
  bool exact = true;
  bool within_bounds = true;
  Cycle baseline = 0;
  Cycle predicted = 0;
  Cycle upper_bound = 0;
  Cycle replayed = 0;
};

std::int64_t scaled_reconfig(const mocha::obs::WhatIf& spec,
                             std::int64_t reconfig) {
  if (spec.kind == mocha::obs::WhatIf::Kind::Speed &&
      spec.task_kind == mocha::sim::TaskKind::Reconfig && reconfig > 0) {
    return static_cast<std::int64_t>(
        std::ceil(static_cast<double>(reconfig) / spec.speed_factor));
  }
  return reconfig;
}

int run(const Args& args) {
  using namespace mocha;

  nn::Network net;
  if (args.network == "alexnet") {
    net = nn::make_alexnet();
  } else if (args.network == "vgg16") {
    net = nn::make_vgg16();
  } else if (args.network == "lenet5") {
    net = nn::make_lenet5();
  } else if (args.network == "nin") {
    net = nn::make_nin();
  } else if (args.network == "mobilenet") {
    net = nn::make_mobilenet_v1();
  } else {
    std::cerr << "unknown network: " << args.network << "\n";
    return 2;
  }

  core::Objective objective = core::Objective::EnergyDelayProduct;
  if (args.objective == "cycles") {
    objective = core::Objective::Cycles;
  } else if (args.objective == "energy") {
    objective = core::Objective::Energy;
  } else if (args.objective != "edp") {
    std::cerr << "unknown objective: " << args.objective << "\n";
    return 2;
  }

  fabric::FabricConfig config = fabric::mocha_default_config();
  if (args.sram_kib > 0) config.sram_bytes = args.sram_kib * 1024;
  if (args.pe > 0) config.pe_rows = config.pe_cols = args.pe;
  if (args.clock_mhz > 0) config.clock_ghz = args.clock_mhz / 1000.0;
  config.validate();

  // The what-if sweep: the ISSUE's canonical questions by default —
  // contention-free headroom, one more DMA channel, doubled codec
  // bandwidth, doubled compute parallelism, and a 2x faster config bus.
  std::vector<obs::WhatIf> what_ifs;
  if (args.what_ifs.empty()) {
    what_ifs.push_back(obs::what_if_unbounded());
    what_ifs.push_back(obs::what_if_capacity_add("dram_channels", 1));
    what_ifs.push_back(obs::what_if_capacity_scale("codec_units", 2.0));
    what_ifs.push_back(obs::what_if_capacity_scale("pe_groups", 2.0));
    what_ifs.push_back(obs::what_if_speed(sim::TaskKind::Reconfig, 2.0));
  } else {
    for (const std::string& spec : args.what_ifs) {
      what_ifs.push_back(obs::parse_what_if(spec));
    }
  }

  std::unique_ptr<obs::TraceSession> trace;
  if (!args.trace_file.empty()) {
    trace = std::make_unique<obs::TraceSession>(args.trace_file);
    // The whole point of this tool's trace: dependence edges as flow
    // events, critical-chain edges in their own category.
    trace->set_sim_flows(true);
  }
  std::mutex trace_mu;
  serve::SignalDrain drain([&trace, &trace_mu] {
    std::lock_guard<std::mutex> lock(trace_mu);
    if (trace) trace->flush();
    std::cerr << "mocha_critpath: interrupted; partial trace flushed\n";
  });

  const core::MorphController planner(model::default_tech(), [&] {
    core::MorphOptions options;
    options.objective = objective;
    options.allow_compression = !args.no_compression;
    options.allow_huffman = args.huffman;
    return options;
  }());
  const auto stats = core::assumed_stats(net, nn::SparsityProfile{});
  const dataflow::NetworkPlan plan =
      planner.plan(net, config, stats, args.batch);
  const auto groups = plan.fusion_groups();

  std::vector<GroupAnalysis> analyses;
  analyses.reserve(groups.size());
  Cycle total_cycles = 0;
  std::int64_t total_reconfig = 0;
  std::vector<Cycle> layer_critical(net.layers.size(), 0);
  // Kind totals across groups, index-aligned by enum value.
  constexpr sim::TaskKind kKinds[] = {
      sim::TaskKind::DmaLoad,  sim::TaskKind::DmaStore,
      sim::TaskKind::Decompress, sim::TaskKind::Compress,
      sim::TaskKind::Compute,  sim::TaskKind::Reconfig,
      sim::TaskKind::Barrier,
  };
  std::vector<Cycle> kind_critical(std::size(kKinds), 0);
  std::vector<Cycle> kind_total(std::size(kKinds), 0);
  auto kind_index = [&](sim::TaskKind kind) {
    for (std::size_t k = 0; k < std::size(kKinds); ++k) {
      if (kKinds[k] == kind) return k;
    }
    return std::size(kKinds) - 1;
  };

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const auto& group = groups[gi];
    dataflow::BuiltSchedule built =
        dataflow::build_group_schedule(net, plan, group, config, stats,
                                       args.batch);
    const sim::Engine engine(built.layout.specs);
    const sim::RunResult result = engine.run(built.graph, /*detailed=*/true);

    GroupAnalysis ga;
    ga.index = gi;
    ga.first_layer = group.first;
    ga.last_layer = group.last;
    ga.label = net.layers[group.first].name;
    for (std::size_t l = group.first + 1; l <= group.last; ++l) {
      ga.label += "+" + net.layers[l].name;
    }
    ga.makespan = result.makespan;
    ga.reconfig_cycles = core::group_reconfig_cycles(config, plan, group.first);
    ga.report = obs::analyze_critical_path(built.graph, result);

    if (trace) {
      // Same lane layout as the accelerator's committed-run emission: the
      // context load precedes the group on the sequencer lane, then the
      // group's tasks, then the offset advances past its makespan.
      std::lock_guard<std::mutex> lock(trace_mu);
      if (ga.reconfig_cycles > 0) {
        trace->sim_event("sequencer", "reconfig " + ga.label, "Reconfig", 0,
                         static_cast<Cycle>(ga.reconfig_cycles));
      }
      trace->set_sim_offset(trace->sim_offset() +
                            static_cast<Cycle>(ga.reconfig_cycles));
      sim::TraceEmitOptions emit_options;
      emit_options.group = static_cast<std::int64_t>(gi);
      emit_options.on_critical_path = &ga.report.on_path;
      sim::emit_trace(built.graph, built.layout.specs, trace.get(),
                      emit_options);
      trace->set_sim_offset(trace->sim_offset() + result.makespan);
    }

    for (const obs::CritStep& step : ga.report.path) {
      const sim::Task& task = built.graph.task(step.task);
      const Cycle duration = task.finish - task.start;
      const std::size_t layer =
          label_layer(task.label, group.first, net.layers.size());
      layer_critical[layer] += duration;
      ga.step_layers.emplace_back(layer, duration);
      ga.step_kinds.push_back(task.kind);
      ga.step_times.emplace_back(task.start, task.finish);
      ga.step_labels.push_back(task.label);
    }
    for (const obs::CritKind& kind : ga.report.kinds) {
      kind_critical[kind_index(kind.kind)] += kind.critical_cycles;
      kind_total[kind_index(kind.kind)] += kind.total_cycles;
    }

    ga.outcomes.reserve(what_ifs.size());
    for (const obs::WhatIf& spec : what_ifs) {
      ga.outcomes.push_back(obs::evaluate_what_if(built.graph, result, spec));
    }

    total_cycles += result.makespan + static_cast<Cycle>(ga.reconfig_cycles);
    total_reconfig += ga.reconfig_cycles;
    analyses.push_back(std::move(ga));
  }

  {
    std::lock_guard<std::mutex> lock(trace_mu);
    trace.reset();
  }

  // Aggregate each what-if across groups.
  std::vector<WhatIfTotal> totals(what_ifs.size());
  bool diverged = false;
  for (std::size_t s = 0; s < what_ifs.size(); ++s) {
    WhatIfTotal& total = totals[s];
    total.name = what_ifs[s].name;
    for (const GroupAnalysis& ga : analyses) {
      const obs::WhatIfOutcome& o = ga.outcomes[s];
      const std::int64_t reconfig =
          scaled_reconfig(what_ifs[s], ga.reconfig_cycles);
      total.baseline += o.baseline + static_cast<Cycle>(ga.reconfig_cycles);
      total.predicted += o.predicted + static_cast<Cycle>(reconfig);
      total.upper_bound += o.upper_bound + static_cast<Cycle>(reconfig);
      total.replayed += o.replayed + static_cast<Cycle>(reconfig);
      total.applicable =
          total.applicable || o.applicable ||
          reconfig != ga.reconfig_cycles;  // reconfig charge was scaled
      total.exact = total.exact && o.exact;
      total.within_bounds = total.within_bounds && o.within_bounds;
      if (!o.within_bounds) {
        std::cerr << "mocha_critpath: what-if '" << o.name << "' on group "
                  << ga.index << " (" << ga.label << "): replayed "
                  << o.replayed << " outside analytic band [" << o.predicted
                  << ", " << o.upper_bound << "]\n";
        diverged = true;
      }
    }
  }

  obs::RunManifest manifest = obs::RunManifest::current("mocha_critpath");
  manifest.network = args.network;
  manifest.accelerator = config.name;
  manifest.objective = args.objective;
  manifest.batch = args.batch;
  manifest.sram_bytes = config.sram_bytes;
  manifest.pe_rows = config.pe_rows;
  manifest.pe_cols = config.pe_cols;
  manifest.clock_ghz = config.clock_ghz;

  // ---- mocha.critpath.v1 report ---------------------------------------
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mocha.critpath.v1");
  json.key("manifest");
  manifest.write_json(json);
  json.key("total_cycles").value(static_cast<std::uint64_t>(total_cycles));
  json.key("reconfig_cycles").value(total_reconfig);

  json.key("groups").begin_array();
  for (const GroupAnalysis& ga : analyses) {
    const obs::CritPathReport& cp = ga.report;
    json.begin_object();
    json.key("group").value(static_cast<std::int64_t>(ga.index));
    json.key("label").value(ga.label);
    json.key("first_layer").value(static_cast<std::int64_t>(ga.first_layer));
    json.key("last_layer").value(static_cast<std::int64_t>(ga.last_layer));
    json.key("makespan").value(static_cast<std::uint64_t>(cp.makespan));
    json.key("reconfig_cycles").value(ga.reconfig_cycles);
    json.key("dep_critical_cycles")
        .value(static_cast<std::uint64_t>(cp.dep_critical_cycles));
    json.key("contention_gap")
        .value(static_cast<std::uint64_t>(cp.contention_gap));
    json.key("queue_entered_cycles")
        .value(static_cast<std::uint64_t>(cp.queue_entered_cycles));
    json.key("path_complete").value(cp.path_complete);
    json.key("path").begin_array();
    for (std::size_t i = 0; i < cp.path.size(); ++i) {
      json.begin_object();
      json.key("task").value(static_cast<std::int64_t>(cp.path[i].task));
      json.key("entered_by").value(obs::crit_edge_name(cp.path[i].entered_by));
      json.key("kind").value(sim::task_kind_name(ga.step_kinds[i]));
      json.key("label").value(ga.step_labels[i]);
      json.key("layer").value(static_cast<std::int64_t>(ga.step_layers[i].first));
      json.key("start").value(static_cast<std::uint64_t>(ga.step_times[i].first));
      json.key("finish")
          .value(static_cast<std::uint64_t>(ga.step_times[i].second));
      json.end_object();
    }
    json.end_array();
    json.key("kinds").begin_array();
    for (const obs::CritKind& kind : cp.kinds) {
      json.begin_object();
      json.key("kind").value(sim::task_kind_name(kind.kind));
      json.key("critical_cycles")
          .value(static_cast<std::uint64_t>(kind.critical_cycles));
      json.key("total_cycles")
          .value(static_cast<std::uint64_t>(kind.total_cycles));
      json.end_object();
    }
    json.end_array();
    json.key("resources").begin_array();
    for (const obs::CritResource& res : cp.resources) {
      json.begin_object();
      json.key("name").value(res.name);
      json.key("capacity").value(static_cast<std::int64_t>(res.capacity));
      json.key("busy_cycles").value(static_cast<std::uint64_t>(res.busy_cycles));
      json.key("critical_cycles")
          .value(static_cast<std::uint64_t>(res.critical_cycles));
      json.key("queue_wait_cycles")
          .value(static_cast<std::uint64_t>(res.queue_wait_cycles));
      json.key("min_slack").value(static_cast<std::uint64_t>(res.min_slack));
      json.key("mean_slack").value(res.mean_slack);
      json.key("utilization").value(res.utilization);
      json.key("bound_tasks").value(res.bound_tasks);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // Top-k bottleneck layers by critical-chain cycles.
  Cycle critical_sum = 0;
  for (Cycle c : layer_critical) critical_sum += c;
  std::vector<std::size_t> layer_order;
  for (std::size_t l = 0; l < layer_critical.size(); ++l) {
    if (layer_critical[l] > 0) layer_order.push_back(l);
  }
  std::stable_sort(layer_order.begin(), layer_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return layer_critical[a] > layer_critical[b];
                   });
  json.key("bottleneck_layers").begin_array();
  for (std::size_t rank = 0;
       rank < layer_order.size() && rank < static_cast<std::size_t>(args.top_k);
       ++rank) {
    const std::size_t l = layer_order[rank];
    json.begin_object();
    json.key("layer").value(static_cast<std::int64_t>(l));
    json.key("name").value(net.layers[l].name);
    json.key("critical_cycles")
        .value(static_cast<std::uint64_t>(layer_critical[l]));
    json.key("share").value(critical_sum == 0
                                ? 0.0
                                : static_cast<double>(layer_critical[l]) /
                                      static_cast<double>(critical_sum));
    json.end_object();
  }
  json.end_array();

  std::vector<std::size_t> kind_order;
  for (std::size_t k = 0; k < std::size(kKinds); ++k) {
    if (kind_total[k] > 0) kind_order.push_back(k);
  }
  std::stable_sort(kind_order.begin(), kind_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return kind_critical[a] > kind_critical[b];
                   });
  json.key("bottleneck_kinds").begin_array();
  for (std::size_t rank = 0;
       rank < kind_order.size() && rank < static_cast<std::size_t>(args.top_k);
       ++rank) {
    const std::size_t k = kind_order[rank];
    json.begin_object();
    json.key("kind").value(sim::task_kind_name(kKinds[k]));
    json.key("critical_cycles")
        .value(static_cast<std::uint64_t>(kind_critical[k]));
    json.key("total_cycles").value(static_cast<std::uint64_t>(kind_total[k]));
    json.end_object();
  }
  json.end_array();

  json.key("what_if").begin_array();
  for (std::size_t s = 0; s < what_ifs.size(); ++s) {
    const WhatIfTotal& total = totals[s];
    json.begin_object();
    json.key("name").value(total.name);
    json.key("applicable").value(total.applicable);
    json.key("exact").value(total.exact);
    json.key("within_bounds").value(total.within_bounds);
    json.key("baseline_cycles").value(static_cast<std::uint64_t>(total.baseline));
    json.key("predicted_cycles")
        .value(static_cast<std::uint64_t>(total.predicted));
    json.key("upper_bound_cycles")
        .value(static_cast<std::uint64_t>(total.upper_bound));
    json.key("replayed_cycles").value(static_cast<std::uint64_t>(total.replayed));
    json.key("predicted_speedup")
        .value(total.predicted == 0 ? 1.0
                                    : static_cast<double>(total.baseline) /
                                          static_cast<double>(total.predicted));
    json.key("replayed_speedup")
        .value(total.replayed == 0 ? 1.0
                                   : static_cast<double>(total.baseline) /
                                         static_cast<double>(total.replayed));
    json.key("groups").begin_array();
    for (const GroupAnalysis& ga : analyses) {
      const obs::WhatIfOutcome& o = ga.outcomes[s];
      json.begin_object();
      json.key("group").value(static_cast<std::int64_t>(ga.index));
      json.key("applicable").value(o.applicable);
      json.key("exact").value(o.exact);
      json.key("within_bounds").value(o.within_bounds);
      json.key("baseline").value(static_cast<std::uint64_t>(o.baseline));
      json.key("predicted").value(static_cast<std::uint64_t>(o.predicted));
      json.key("upper_bound").value(static_cast<std::uint64_t>(o.upper_bound));
      json.key("replayed").value(static_cast<std::uint64_t>(o.replayed));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (args.out_file.empty()) {
    std::cout << json.str() << "\n";
  } else {
    std::ofstream out(args.out_file);
    if (!out) {
      std::cerr << "error: cannot write " << args.out_file << "\n";
      return 2;
    }
    out << json.str() << "\n";
  }

  if (!args.hints_file.empty()) {
    // mocha.hints.v1: per-layer criticality normalized to the most critical
    // layer, consumed by `mocha_sim --slack-hints`.
    Cycle max_critical = 0;
    for (Cycle c : layer_critical) max_critical = std::max(max_critical, c);
    util::JsonWriter hints;
    hints.begin_object();
    hints.key("schema").value("mocha.hints.v1");
    hints.key("network").value(net.name);
    hints.key("layers").begin_array();
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
      hints.begin_object();
      hints.key("layer").value(static_cast<std::int64_t>(l));
      hints.key("name").value(net.layers[l].name);
      hints.key("criticality")
          .value(max_critical == 0
                     ? 0.0
                     : static_cast<double>(layer_critical[l]) /
                           static_cast<double>(max_critical));
      hints.end_object();
    }
    hints.end_array();
    hints.end_object();
    std::ofstream out(args.hints_file);
    if (!out) {
      std::cerr << "error: cannot write " << args.hints_file << "\n";
      return 2;
    }
    out << hints.str() << "\n";
  }

  // Human summary on stdout when the JSON went to a file.
  if (!args.out_file.empty()) {
    std::cout << args.network << ": " << total_cycles << " cycles across "
              << analyses.size() << " groups";
    if (!layer_order.empty()) {
      std::cout << "; top bottleneck layer " << net.layers[layer_order[0]].name
                << " (" << layer_critical[layer_order[0]]
                << " critical cycles)";
    }
    std::cout << "\n";
    for (const WhatIfTotal& total : totals) {
      std::cout << "  what-if " << total.name << ": predicted ["
                << total.predicted << ", " << total.upper_bound
                << "], replayed " << total.replayed
                << (total.exact ? " (exact)" : "")
                << (total.within_bounds ? "" : "  ** OUT OF BOUNDS **")
                << "\n";
    }
    std::cout << "wrote " << args.out_file << "\n";
  }

  if (diverged) {
    std::cerr << "mocha_critpath: analytic prediction and engine replay "
                 "disagree (see above)\n";
    return 5;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    return run(args);
  } catch (const mocha::CheckFailure& e) {
    std::cerr << "mocha_critpath: " << e.what() << "\n";
    return 3;
  }
}
