// Reproducible parallel-performance benchmark: times the hot paths — the
// functional executor, the morph planner, and the fleet of simulated
// accelerators — at 1/2/N threads and emits BENCH_parallel.json so the perf
// trajectory is tracked from PR to PR.
//
// Every workload returns a checksum over its results; the harness asserts
// the checksum is identical at every thread count, so a speedup that costs
// determinism cannot be reported as a win.
//
// Usage:
//   mocha_bench [--smoke] [--out BENCH_parallel.json] [--threads 1,2,8]
//               [--isa scalar|avx2|neon]
//
// --smoke shrinks the workloads to seconds (wired as the `bench_smoke` ctest
// entry so the harness and the JSON emitter cannot rot). The default thread
// sweep never exceeds the host's hardware_concurrency — numbers beyond it
// measure oversubscription, not scaling — but --threads can ask for any
// series. --isa forces the kernel/codec dispatch (same as MOCHA_KERNEL_ISA);
// the dispatched ISA is recorded in every record and in the manifest.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/morph.hpp"
#include "dataflow/executor.hpp"
#include "nn/generate.hpp"
#include "nn/reference.hpp"
#include "obs/manifest.hpp"
#include "obs/sink.hpp"
#include "util/cpuid.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace mocha::bench {
namespace {

using dataflow::LayerPlan;
using dataflow::NetworkPlan;
using nn::Index;
using nn::Value;
using nn::ValueTensor;

/// FNV-1a over anything the workloads want folded into their checksum.
class Checksum {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void tensor(const ValueTensor& t) {
    bytes(t.data(), static_cast<std::size_t>(t.size()) * sizeof(Value));
  }
  void integer(std::int64_t v) { bytes(&v, sizeof(v)); }
  void text(const std::string& s) { bytes(s.data(), s.size()); }

  std::string hex() const {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash_));
    return buf;
  }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

struct Record {
  std::string workload;
  int threads = 1;
  double wall_ms = 0;
  double speedup = 1.0;
  std::string checksum;
  /// What the host actually offers (0 when the runtime cannot tell) and
  /// whether this record asked for more lanes than that — oversubscribed
  /// points are real measurements but not scaling evidence.
  int hw_threads = 0;
  bool oversubscribed = false;
  /// Which kernel/codec ISA variant the dispatch routed to — numbers from
  /// different variants are different benchmarks.
  std::string kernel_isa;
};

/// A workload is a deterministic callable returning its result checksum.
struct Workload {
  std::string name;
  std::function<std::string()> run;
  /// Thread-scaling workloads run at every requested count; single-shot
  /// workloads (e.g. the checked-vs-unchecked accessor delta) run once.
  bool sweep_threads = true;
};

/// Times `workload` at each thread count (min of `reps` runs) and checks
/// the result checksum never changes with the thread count. Thread counts
/// beyond the host's hardware_concurrency still run (the scaling series
/// stays complete) but are flagged per record and collected in `warnings`,
/// so a "regression" at 4 threads on a 1-core CI box reads as what it is.
void measure(const Workload& workload, const std::vector<int>& thread_counts,
             int reps, std::vector<Record>* records,
             std::vector<std::string>* warnings) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  double serial_ms = 0;
  std::string reference_checksum;
  const std::vector<int> counts =
      workload.sweep_threads ? thread_counts : std::vector<int>{1};
  for (int threads : counts) {
    util::ThreadPool::set_global_threads(threads);
    std::string checksum;
    double best_ms = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      best_ms = std::min(best_ms, time_ms([&] { checksum = workload.run(); }));
    }
    if (reference_checksum.empty()) {
      reference_checksum = checksum;
      serial_ms = best_ms;
    }
    MOCHA_CHECK(checksum == reference_checksum,
                workload.name << ": checksum changed at " << threads
                              << " threads — parallel run is not equivalent");
    Record record;
    record.workload = workload.name;
    record.threads = threads;
    record.wall_ms = best_ms;
    record.speedup = best_ms > 0 ? serial_ms / best_ms : 1.0;
    record.checksum = checksum;
    record.hw_threads = hw;
    record.oversubscribed = hw > 0 && threads > hw;
    record.kernel_isa = util::isa_name(util::active_isa());
    if (record.oversubscribed) {
      std::string warning = workload.name + ": " + std::to_string(threads) +
                            " threads requested on a machine with " +
                            std::to_string(hw) +
                            " hardware threads; timing is oversubscribed";
      std::cerr << "warning: " << warning << "\n";
      warnings->push_back(std::move(warning));
    }
    records->push_back(record);
    std::cout << workload.name << "  threads=" << threads << "  wall_ms="
              << best_ms << "  speedup=" << record.speedup << "\n";
  }
  util::ThreadPool::set_global_threads(1);
}

/// VGG-style conv stack (3x3 kernels, pooling between blocks) executed
/// functionally with spatial tiling and real codec round-trips — the E1..E10
/// regeneration hot path.
Workload executor_workload(bool smoke) {
  return {"executor_vgg", [smoke] {
    const nn::Network net =
        smoke ? nn::make_synthetic("vgg_smoke", 16, 16, {16, 32}, 3, true)
              : nn::make_synthetic("vgg_style", 56, 56, {64, 128, 256}, 3,
                                   true);
    util::Rng rng(17);
    const ValueTensor input =
        nn::random_tensor(net.layers.front().input_shape(), 0.3, rng);
    const auto weights = nn::random_weights(net, 0.25, rng);
    NetworkPlan plan;
    for (const nn::LayerSpec& layer : net.layers) {
      LayerPlan lp;
      // Quarter tiles give a 4x4 grid per layer; real codecs on every
      // stream so the measurement path is the one the tests rely on.
      lp.tile = {std::max<Index>(1, (layer.out_h() + 3) / 4),
                 std::max<Index>(1, (layer.out_w() + 3) / 4), layer.in_c,
                 layer.out_channels()};
      lp.ifmap_codec = compress::CodecKind::Zrle;
      lp.kernel_codec = layer.has_weights() ? compress::CodecKind::Bitmask
                                            : compress::CodecKind::None;
      lp.ofmap_codec = compress::CodecKind::Zrle;
      plan.layers.push_back(lp);
    }
    // Encode-only codec measurement: the coded byte counts (and hence this
    // workload's checksum) are identical with or without the decode+compare
    // verification, which the integration tests keep enabled.
    dataflow::FunctionalOptions options;
    options.verify_codecs = false;
    const dataflow::FunctionalResult result =
        dataflow::run_functional(net, plan, input, weights, options);
    Checksum sum;
    sum.tensor(result.outputs.back());
    for (const dataflow::MeasuredStreams& streams : result.streams) {
      sum.integer(streams.ifmap_coded);
      sum.integer(streams.kernel_coded);
      sum.integer(streams.ofmap_coded);
    }
    return sum.hex();
  }};
}

/// The morph controller's full candidate search (analytical sweep + exact
/// refinement) — the planner hot path.
Workload planner_workload(bool smoke) {
  return {"planner_alexnet", [smoke] {
    const nn::Network net = smoke ? nn::make_lenet5() : nn::make_alexnet();
    const auto stats = core::assumed_stats(net, {});
    const core::MorphController morph(model::default_tech(),
                                      core::MorphOptions{});
    const NetworkPlan plan =
        morph.plan(net, fabric::mocha_default_config(), stats);
    Checksum sum;
    for (const LayerPlan& lp : plan.layers) sum.text(lp.summary());
    return sum.hex();
  }};
}

/// The comparative fleet (MOCHA + three baselines) planned and simulated on
/// one network — the figure-harness hot path, parallel across accelerators.
Workload fleet_workload(bool smoke) {
  return {"fleet_sim", [smoke] {
    const nn::Network net = smoke ? nn::make_lenet5() : nn::make_alexnet();
    const Fleet fleet = Fleet::make();
    const FleetRuns runs = run_fleet(fleet, net);
    Checksum sum;
    sum.integer(static_cast<std::int64_t>(runs.mocha.total_cycles));
    sum.integer(runs.mocha.total_dram_bytes);
    for (const auto& [strategy, report] : runs.baselines) {
      sum.integer(static_cast<std::int64_t>(report.total_cycles));
      sum.integer(report.total_dram_bytes);
    }
    return sum.hex();
  }};
}

/// One conv layer through the packed microkernels (the reference entry
/// point) at a given input sparsity — tracks the raw compute backend from
/// PR to PR. The dense variant measures the interior fast path; the
/// 90%-sparse variant additionally exercises the zero-row skipping.
Workload micro_kernel_workload(bool smoke, const char* name,
                               double sparsity) {
  const Index side = smoke ? 16 : 56;
  const Index in_c = smoke ? 8 : 64;
  return {name, [side, in_c, sparsity] {
    const nn::LayerSpec layer =
        nn::conv_layer("bench_conv", in_c, side, side, 64, 3, 1, 1);
    util::Rng rng(29);
    const ValueTensor input =
        nn::random_tensor(layer.input_shape(), sparsity, rng);
    const ValueTensor weights =
        nn::random_tensor(layer.weight_shape(), 0.25, rng, -8, 8);
    ValueTensor out;
    for (int rep = 0; rep < 4; ++rep) {
      out = nn::conv2d_ref(input, weights, layer, nn::Quant{});
    }
    Checksum sum;
    sum.tensor(out);
    return sum.hex();
  }};
}

/// Checked at() walk over a large tensor — baseline for the accessor delta.
Workload access_checked_workload(bool smoke) {
  const Index side = smoke ? 64 : 256;
  return {"tensor_at_checked", [side] {
    util::Rng rng(5);
    const ValueTensor t =
        nn::random_tensor({1, 32, side, side}, 0.3, rng);
    std::int64_t sum = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (Index c = 0; c < t.shape().c; ++c) {
        for (Index y = 0; y < t.shape().h; ++y) {
          for (Index x = 0; x < t.shape().w; ++x) {
            sum += t.at(0, c, y, x);
          }
        }
      }
    }
    Checksum check;
    check.integer(sum);
    return check.hex();
  }, /*sweep_threads=*/false};
}

/// The same walk through at_unchecked — the measured win of the hot-loop
/// accessor used by the executor and reference kernels.
Workload access_unchecked_workload(bool smoke) {
  const Index side = smoke ? 64 : 256;
  return {"tensor_at_unchecked", [side] {
    util::Rng rng(5);
    const ValueTensor t =
        nn::random_tensor({1, 32, side, side}, 0.3, rng);
    std::int64_t sum = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (Index c = 0; c < t.shape().c; ++c) {
        for (Index y = 0; y < t.shape().h; ++y) {
          for (Index x = 0; x < t.shape().w; ++x) {
            sum += t.at_unchecked(0, c, y, x);
          }
        }
      }
    }
    Checksum check;
    check.integer(sum);
    return check.hex();
  }, /*sweep_threads=*/false};
}

void emit_json(const std::vector<Record>& records,
               const std::vector<std::string>& warnings, bool smoke,
               const std::string& path) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value("mocha.bench.parallel.v1");
  json.key("manifest");
  obs::RunManifest::current("mocha_bench").write_json(json);
  json.key("smoke").value(smoke);
  json.key("hardware_concurrency")
      .value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.key("warnings").begin_array();
  for (const std::string& warning : warnings) json.value(warning);
  json.end_array();
  json.key("records").begin_array();
  for (const Record& record : records) {
    json.begin_object();
    json.key("workload").value(record.workload);
    json.key("threads").value(record.threads);
    json.key("hw_threads").value(record.hw_threads);
    json.key("oversubscribed").value(record.oversubscribed);
    json.key("wall_ms").value(record.wall_ms);
    json.key("speedup").value(record.speedup);
    json.key("checksum").value(record.checksum);
    json.key("kernel_isa").value(record.kernel_isa);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  MOCHA_CHECK(mocha::obs::write_file_atomic(path, json.str() + "\n"),
              "cannot write " << path);
  std::cout << "wrote " << path << "\n";
}

/// Parses a comma-separated positive-integer list ("1,2,8").
bool parse_thread_list(const std::string& text, std::vector<int>* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string item = text.substr(start, comma - start);
    if (item.empty()) return false;
    int value = 0;
    for (char ch : item) {
      if (ch < '0' || ch > '9') return false;
      value = value * 10 + (ch - '0');
      if (value > 1 << 16) return false;
    }
    if (value < 1) return false;
    out->push_back(value);
    start = comma + 1;
  }
  return !out->empty();
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_parallel.json";
  std::vector<int> thread_override;
  const auto usage = [] {
    std::cerr << "usage: mocha_bench [--smoke] [--out path] "
                 "[--threads 1,2,8] [--isa scalar|avx2|neon]\n";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0 && arg.size() > 6) {
      out_path = arg.substr(6);
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!parse_thread_list(argv[++i], &thread_override)) {
        std::cerr << "error: bad --threads list '" << argv[i] << "'\n";
        usage();
        return 2;
      }
    } else if (arg == "--isa" && i + 1 < argc) {
      util::KernelIsa isa;
      if (!util::parse_isa(argv[++i], &isa)) {
        std::cerr << "error: bad --isa '" << argv[i] << "'\n";
        usage();
        return 2;
      }
      util::force_isa(isa);  // hard error if not runnable here
    } else {
      std::cerr << "error: bad argument '" << arg << "'\n";
      usage();
      return 2;
    }
  }

  // Default sweep: 1, 2, and "all the machine has", capped at the host's
  // hardware_concurrency — counts beyond it measure oversubscription, not
  // scaling. --threads overrides uncapped (the oversubscription warnings
  // then say what the numbers mean).
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = thread_override;
  if (thread_counts.empty()) {
    for (int t : {1, 2, hw}) {
      if (t <= hw) thread_counts.push_back(t);
    }
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());
  }
  const int reps = smoke ? 1 : 3;

  std::vector<Record> records;
  std::vector<std::string> warnings;
  for (const Workload& workload :
       {executor_workload(smoke), planner_workload(smoke),
        fleet_workload(smoke),
        micro_kernel_workload(smoke, "micro_kernels_dense", 0.0),
        micro_kernel_workload(smoke, "micro_kernels_sparse90", 0.9),
        access_checked_workload(smoke), access_unchecked_workload(smoke)}) {
    measure(workload, thread_counts, reps, &records, &warnings);
  }
  emit_json(records, warnings, smoke, out_path);
  return 0;
}

}  // namespace
}  // namespace mocha::bench

int main(int argc, char** argv) {
  try {
    return mocha::bench::run(argc, argv);
  } catch (const mocha::CheckFailure& e) {
    std::cerr << "mocha_bench: " << e.what() << "\n";
    return 3;
  }
}
