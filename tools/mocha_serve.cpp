// mocha_serve — open-loop load generator + SLO report for the resilient
// serving runtime (src/serve/).
//
// Replays a synthetic Poisson request trace against a ServeEngine hosting
// one network, optionally under an injected fault scenario (resource kills
// + transient codec bit flips), and prints what the runtime did about it:
// per-outcome counts, exact latency percentiles of the accepted traffic,
// retry/fallback activity and circuit-breaker transitions — then checks the
// conservation law (submitted == completed + shed + failed) and, when
// --slo-ms is given, the p99 of completed requests against it.
//
// Examples:
//   mocha_serve --network lenet5 --requests 200 --rate 50
//   mocha_serve --network lenet5 --fault-kill 0.25 --codec-flip 2e-4
//   mocha_serve --network lenet5 --codec-flip 5e-4 --heal-after 0.5
//   mocha_serve --network lenet5 --requests 400 --rate 1000 --queue-cap 8
//
// SIGINT/SIGTERM stop admission, drain what is in flight, and still print
// the report (exit 0): the runtime's graceful-shutdown path is the tool's.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/model.hpp"
#include "nn/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/signal.hpp"
#include "util/rng.hpp"

namespace {

struct Args {
  std::string network = "lenet5";
  int requests = 100;
  double rate = 50;  // arrivals per second (open loop)
  int workers = 2;
  int queue_cap = 16;
  std::int64_t deadline_ms = 1000;
  int priority_levels = 3;
  int tenants = 2;
  double tenant_rate = 0;  // 0 = unmetered
  double tenant_burst = 4;
  int retries = 3;
  int breaker_failures = 3;
  std::int64_t breaker_cooldown_ms = 250;
  std::int64_t slo_ms = 0;  // 0 = report only, no SLO gate
  std::string faults_file;
  double fault_kill = 0.0;
  double codec_flip = 0.0;
  std::uint64_t fault_seed = 42;
  double heal_after = 0.0;  // clear the fault scenario after this fraction
  std::uint64_t seed = 1;
  bool json = false;
  bool metrics = false;
  std::string out_file;
  std::string trace_file;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--network alexnet|vgg16|lenet5|nin|mobilenet] [--requests N] "
         "[--rate RPS]\n"
         "       [--workers N] [--queue-cap N] [--deadline-ms N] "
         "[--priority-levels N]\n"
         "       [--tenants N] [--tenant-rate RPS] [--tenant-burst N]\n"
         "       [--retries N] [--breaker-failures N] "
         "[--breaker-cooldown-ms N] [--slo-ms N]\n"
         "       [--faults FILE] [--fault-kill FRAC] [--codec-flip RATE] "
         "[--fault-seed N]\n"
         "       [--heal-after FRAC] [--seed N] [--json] [--metrics] "
         "[--out FILE] [--trace FILE]\n";
  std::exit(2);
}

[[noreturn]] void bad_arg(const char* argv0, const std::string& message) {
  std::cerr << "error: " << message << "\n";
  usage(argv0);
}

std::int64_t parse_int(const char* argv0, const std::string& flag,
                       const std::string& text, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t value = 0;
  std::size_t used = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty()) {
    bad_arg(argv0, flag + " expects an integer, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    bad_arg(argv0, flag + "=" + text + " outside [" + std::to_string(lo) +
                       ", " + std::to_string(hi) + "]");
  }
  return value;
}

double parse_double(const char* argv0, const std::string& flag,
                    const std::string& text, double lo, double hi) {
  double value = 0;
  std::size_t used = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !std::isfinite(value)) {
    bad_arg(argv0, flag + " expects a number, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    std::ostringstream os;
    os << flag << "=" << text << " outside [" << lo << ", " << hi << "]";
    bad_arg(argv0, os.str());
  }
  return value;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    bool have_inline = false;
    std::string inline_value;
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        have_inline = true;
        inline_value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      }
    }
    bool took_value = false;
    auto value = [&]() -> std::string {
      took_value = true;
      if (have_inline) return inline_value;
      if (i + 1 >= argc) bad_arg(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--network") {
      args.network = value();
    } else if (flag == "--requests") {
      args.requests =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1 << 20));
    } else if (flag == "--rate") {
      args.rate = parse_double(argv[0], flag, value(), 1e-3, 1e6);
    } else if (flag == "--workers") {
      args.workers =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 256));
    } else if (flag == "--queue-cap") {
      args.queue_cap =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1 << 20));
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = parse_int(argv[0], flag, value(), 0, 1 << 30);
    } else if (flag == "--priority-levels") {
      args.priority_levels =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 100));
    } else if (flag == "--tenants") {
      args.tenants =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1000));
    } else if (flag == "--tenant-rate") {
      args.tenant_rate = parse_double(argv[0], flag, value(), 0, 1e9);
    } else if (flag == "--tenant-burst") {
      args.tenant_burst = parse_double(argv[0], flag, value(), 1, 1e9);
    } else if (flag == "--retries") {
      args.retries =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 100));
    } else if (flag == "--breaker-failures") {
      args.breaker_failures =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1000));
    } else if (flag == "--breaker-cooldown-ms") {
      args.breaker_cooldown_ms = parse_int(argv[0], flag, value(), 1, 1 << 30);
    } else if (flag == "--slo-ms") {
      args.slo_ms = parse_int(argv[0], flag, value(), 0, 1 << 30);
    } else if (flag == "--faults") {
      args.faults_file = value();
    } else if (flag == "--fault-kill") {
      args.fault_kill = parse_double(argv[0], flag, value(), 0.0, 0.95);
    } else if (flag == "--codec-flip") {
      args.codec_flip = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(
          argv[0], flag, value(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (flag == "--heal-after") {
      args.heal_after = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(parse_int(
          argv[0], flag, value(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--out") {
      args.out_file = value();
    } else if (flag == "--trace") {
      args.trace_file = value();
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
    } else {
      bad_arg(argv[0], "unknown flag: " + flag);
    }
    if (have_inline && !took_value) {
      bad_arg(argv[0], flag + " does not take a value");
    }
  }
  if (!args.faults_file.empty() && args.fault_kill > 0.0) {
    bad_arg(argv[0], "--faults and --fault-kill are mutually exclusive");
  }
  return args;
}

int run(const Args& args) {
  using namespace mocha;

  nn::Network net;
  if (args.network == "alexnet") {
    net = nn::make_alexnet();
  } else if (args.network == "vgg16") {
    net = nn::make_vgg16();
  } else if (args.network == "lenet5") {
    net = nn::make_lenet5();
  } else if (args.network == "nin") {
    net = nn::make_nin();
  } else if (args.network == "mobilenet") {
    net = nn::make_mobilenet_v1();
  } else {
    std::cerr << "unknown network: " << args.network << "\n";
    return 2;
  }

  if (args.metrics) obs::MetricsRegistry::global().set_enabled(true);
  std::unique_ptr<obs::TraceSession> trace;
  if (!args.trace_file.empty()) {
    trace = std::make_unique<obs::TraceSession>(args.trace_file);
  }

  const fabric::FabricConfig config = fabric::mocha_default_config();
  fault::FaultModel faults;
  bool inject = false;
  if (!args.faults_file.empty()) {
    std::ifstream in(args.faults_file);
    if (!in) {
      std::cerr << "error: cannot read fault spec " << args.faults_file
                << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      faults = fault::FaultModel::from_json(buffer.str());
    } catch (const CheckFailure& e) {
      std::cerr << "error: bad fault spec " << args.faults_file << ": "
                << e.what() << "\n";
      return 2;
    }
    inject = true;
  } else if (args.fault_kill > 0.0 || args.codec_flip > 0.0) {
    faults = fault::FaultModel::random_scenario(config, args.fault_kill,
                                                args.fault_seed);
    faults.codec_bit_flip_rate = args.codec_flip;
    inject = true;
  }

  serve::ServeOptions options;
  options.workers = args.workers;
  options.queue_capacity = static_cast<std::size_t>(args.queue_cap);
  options.default_deadline_ms = static_cast<std::uint64_t>(args.deadline_ms);
  options.retry.max_attempts = args.retries;
  options.breaker.failure_threshold = args.breaker_failures;
  options.breaker.cooldown_ms =
      static_cast<std::uint64_t>(args.breaker_cooldown_ms);
  options.breaker.latency_slo_ms = static_cast<std::uint64_t>(args.slo_ms);
  options.tenant_rate_per_sec = args.tenant_rate;
  options.tenant_burst = args.tenant_burst;

  serve::ServeEngine engine(options);
  util::Rng rng(args.seed);
  engine.register_model(args.network, net, nn::random_weights(net, 0.2, rng),
                        config);
  if (inject) {
    engine.set_fault_scenario(faults);
    std::cerr << "fault scenario: " << faults.summary(config) << "\n";
  }

  // A handful of pre-generated inputs cycled across requests: arrival
  // timing, not input diversity, is what this tool exercises.
  std::vector<nn::ValueTensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(
        random_tensor(net.layers.front().input_shape(), 0.05, rng));
  }

  // Ctrl-C / SIGTERM: stop admitting, drain what's queued, still report.
  serve::SignalDrain drain;

  const int heal_at = args.heal_after > 0.0
                          ? static_cast<int>(args.heal_after * args.requests)
                          : -1;
  bool healed = false;

  std::vector<serve::TicketPtr> tickets;
  tickets.reserve(static_cast<std::size_t>(args.requests));
  util::Rng arrivals(args.seed ^ 0x9e3779b97f4a7c15ull);
  bool interrupted = false;
  for (int i = 0; i < args.requests; ++i) {
    if (serve::SignalDrain::requested()) {
      interrupted = true;
      break;
    }
    if (i == heal_at && inject && !healed) {
      engine.clear_fault_scenario();
      healed = true;
      std::cerr << "fault scenario healed after " << i << " requests\n";
    }
    serve::Request request;
    request.model = args.network;
    request.tenant = "tenant-" + std::to_string(i % args.tenants);
    request.priority =
        static_cast<int>(arrivals.uniform_int(0, args.priority_levels - 1));
    request.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    tickets.push_back(engine.submit(std::move(request)));

    // Open-loop Poisson arrivals: exponential inter-arrival times.
    const double u = std::max(arrivals.uniform(), 1e-12);
    const double gap_s = -std::log(u) / args.rate;
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        static_cast<std::int64_t>(gap_s * 1e9)));
  }

  engine.shutdown(/*drain=*/true);

  // Every ticket is terminal after shutdown; tally the outcomes.
  const serve::ServeStats stats = engine.stats();
  // Completed-request latency distribution, accumulated into the same
  // log2-bucketed histogram the metrics registry uses — the report's
  // percentiles are the registry's derived p50/p90/p99, not a private
  // nearest-rank implementation.
  obs::HistogramData latency_hist;
  std::int64_t total_exec_attempts = 0;
  std::int64_t total_codec_retries = 0;
  for (const serve::TicketPtr& ticket : tickets) {
    const serve::Response& resp = ticket->wait();
    total_exec_attempts += resp.attempts;
    total_codec_retries += resp.codec_retries;
    if (resp.outcome == serve::Outcome::Completed) {
      latency_hist.add(static_cast<std::int64_t>(resp.latency_ns / 1000));
    }
  }

  const auto hist_pct = [&](double p) {
    return static_cast<std::uint64_t>(std::llround(latency_hist.percentile(p)));
  };
  const std::uint64_t p50 = hist_pct(50);
  const std::uint64_t p90 = hist_pct(90);
  const std::uint64_t p99 = hist_pct(99);

  const bool conserved =
      stats.submitted == stats.completed + stats.shed + stats.failed &&
      stats.in_flight == 0;
  const bool slo_ok =
      args.slo_ms == 0 ||
      p99 <= static_cast<std::uint64_t>(args.slo_ms) * 1000;

  std::ostringstream json;
  json << "{\n  \"schema\": \"mocha.serve.v1\",\n"
       << "  \"network\": \"" << args.network << "\",\n"
       << "  \"requests\": " << args.requests << ",\n"
       << "  \"rate_rps\": " << args.rate << ",\n"
       << "  \"interrupted\": " << (interrupted ? "true" : "false") << ",\n"
       << "  \"submitted\": " << stats.submitted << ",\n"
       << "  \"completed\": " << stats.completed << ",\n"
       << "  \"shed\": " << stats.shed << ",\n"
       << "  \"failed\": " << stats.failed << ",\n"
       << "  \"outcomes\": {";
  bool first = true;
  for (int i = 1; i < 8; ++i) {
    const auto outcome = static_cast<serve::Outcome>(i);
    if (!first) json << ", ";
    json << "\"" << serve::outcome_name(outcome)
         << "\": " << stats.outcome_count(outcome);
    first = false;
  }
  json << "},\n"
       << "  \"retries\": " << stats.retries << ",\n"
       << "  \"exec_attempts\": " << total_exec_attempts << ",\n"
       << "  \"codec_retries\": " << total_codec_retries << ",\n"
       << "  \"fallback_completions\": " << stats.fallback_completions << ",\n"
       << "  \"breaker_trips\": " << engine.breaker_trips(args.network)
       << ",\n"
       << "  \"breaker_recoveries\": "
       << engine.breaker_recoveries(args.network) << ",\n"
       << "  \"latency_us\": {\"p50\": " << p50 << ", \"p90\": " << p90
       << ", \"p99\": " << p99 << "},\n"
       << "  \"slo_ms\": " << args.slo_ms << ",\n"
       << "  \"conserved\": " << (conserved ? "true" : "false") << ",\n"
       << "  \"slo_ok\": " << (slo_ok ? "true" : "false") << "\n}";

  if (!args.out_file.empty()) {
    if (!obs::write_file_atomic(args.out_file, json.str() + "\n")) {
      std::cerr << "error: cannot write " << args.out_file << "\n";
      return 3;
    }
  }
  if (trace) trace.reset();  // flush before reporting

  if (args.json) {
    std::cout << json.str() << "\n";
  } else {
    std::cout << "serve report: " << args.network << ", "
              << stats.submitted << " submitted"
              << (interrupted ? " (interrupted, drained)" : "") << "\n"
              << "  completed " << stats.completed << "  shed " << stats.shed
              << "  failed " << stats.failed << "\n  outcomes:";
    for (int i = 1; i < 8; ++i) {
      const auto outcome = static_cast<serve::Outcome>(i);
      if (stats.outcome_count(outcome) == 0) continue;
      std::cout << " " << serve::outcome_name(outcome) << "="
                << stats.outcome_count(outcome);
    }
    std::cout << "\n  retries " << stats.retries << ", codec re-fetches "
              << total_codec_retries << ", fallback completions "
              << stats.fallback_completions << "\n  breaker: trips "
              << engine.breaker_trips(args.network) << ", recoveries "
              << engine.breaker_recoveries(args.network) << ", state "
              << serve::breaker_state_name(
                     engine.breaker_state(args.network))
              << "\n  latency (completed): p50 " << p50 << " us, p90 " << p90
              << " us, p99 " << p99 << " us\n"
              << "  conservation: "
              << (conserved ? "ok" : "VIOLATED") << "\n";
    if (args.slo_ms > 0) {
      std::cout << "  SLO p99 <= " << args.slo_ms << " ms: "
                << (slo_ok ? "met" : "MISSED") << "\n";
    }
  }
  if (args.metrics) {
    std::cout << "\nmetrics: "
              << obs::MetricsRegistry::global().snapshot().to_json() << "\n";
  }

  if (!conserved) return 4;
  return slo_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    return run(args);
  } catch (const mocha::CheckFailure& e) {
    std::cerr << "mocha_serve: " << e.what() << "\n";
    return 3;
  }
}
