// mocha_serve — open-loop load generator + SLO report for the sharded
// serving fleet (src/serve/).
//
// Replays a synthetic Poisson request trace against a ShardRouter fronting
// N shared-nothing ServeEngine shards hosting one or more models replicated
// across R-shard replica sets, optionally under injected fault scenarios
// (resource kills, codec bit flips, execution stalls), and prints what the
// fleet did about it: per-outcome counts, exact latency percentiles of the
// accepted traffic, hedging / failover / stealing / canary activity,
// per-shard health, and retry/fallback/breaker detail — then checks the
// fleet conservation law (submitted == completed + shed + failed, one
// terminal outcome per client request), the p99 of completed requests
// against --slo-ms, and completed/submitted against --availability-min.
//
// Fleet experiments:
//   mocha_serve --shards 4 --requests 400 --rate 200
//   mocha_serve --shards 3 --replicas 2 --kill-shard 1 --kill-after 0.25
//               --codec-flip 1.0 --availability-min 0.999
//   mocha_serve --shards 4 --fleet-faulty 1 --fault-kill 0.3
//   mocha_serve --shards 2 --kill-shard 1 --stall-ms 80 --hedge-ms 10
//               --hedge-compare
//   mocha_serve --shards 3 --replicas 2 --routing-out routing.json
//   mocha_serve --bench-out BENCH_serve.json --bench-shards 1,2,4
//               --bench-replicas 1,2,3
//
// Exit codes: 0 ok, 1 SLO missed, 2 usage, 3 internal error,
// 4 conservation violated, 6 hedge-compare showed no p99 improvement,
// 7 availability below --availability-min.
//
// SIGINT/SIGTERM stop admission, drain what is in flight, and still print
// the report: the runtime's graceful-shutdown path is the tool's.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/model.hpp"
#include "nn/generate.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "serve/router.hpp"
#include "serve/signal.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace {

struct Args {
  std::string network = "lenet5";
  int requests = 100;
  double rate = 50;  // arrivals per second (open loop)
  int shards = 1;
  int workers = 2;
  int queue_cap = 16;
  int batch_max = 1;
  std::int64_t deadline_ms = 1000;
  int priority_levels = 3;
  int tenants = 2;
  double tenant_rate = 0;  // 0 = unmetered
  double tenant_burst = 4;
  int retries = 3;
  int breaker_failures = 3;
  std::int64_t breaker_cooldown_ms = 250;
  std::int64_t slo_ms = 0;  // 0 = report only, no SLO gate

  // Fleet behaviour.
  bool no_hedge = false;
  std::int64_t hedge_ms = 0;  // 0 = adaptive p99-derived delay
  bool no_steal = false;
  std::int64_t canary_period_ms = 25;
  bool hedge_compare = false;
  // Replication: 0 = router default (2, clamped to the fleet size).
  int replicas = 0;
  // Multi-model mix: the network is registered under this many names and
  // requests cycle across them.
  int models = 1;
  std::string routing_out;
  // Availability gate: completed/submitted below this fails with exit 7.
  // Negative = report only.
  double availability_min = -1.0;

  // Fault injection. --faults/--fault-kill/--codec-flip without
  // --kill-shard apply fleet-wide (the pre-fleet behaviour); with
  // --kill-shard they (plus --stall-ms) form the scenario applied to that
  // one shard on the kill/heal schedule. --fleet-faulty draws decorrelated
  // per-shard scenarios instead.
  std::string faults_file;
  double fault_kill = 0.0;
  double codec_flip = 0.0;
  std::uint64_t fault_seed = 42;
  double heal_after = 0.0;  // clear fleet-wide faults after this fraction
  int kill_shard = -1;
  double kill_after = 0.0;
  double heal_shard_after = 0.0;
  std::int64_t stall_ms = 0;
  int fleet_faulty = 0;

  std::uint64_t seed = 1;
  bool json = false;
  bool metrics = false;
  std::string out_file;
  std::string trace_file;
  std::string bench_out;
  std::vector<int> bench_shards = {1, 2, 4};
  // Availability-vs-R sweep (same seed and kill/heal schedule per point);
  // empty = off.
  std::vector<int> bench_replicas;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--network alexnet|vgg16|lenet5|nin|mobilenet] [--requests N] "
         "[--rate RPS]\n"
         "       [--shards N] [--workers N] [--queue-cap N] [--batch-max N] "
         "[--deadline-ms N]\n"
         "       [--priority-levels N] [--tenants N] [--tenant-rate RPS] "
         "[--tenant-burst N]\n"
         "       [--retries N] [--breaker-failures N] "
         "[--breaker-cooldown-ms N] [--slo-ms N]\n"
         "       [--no-hedge] [--hedge-ms N] [--no-steal] "
         "[--canary-period-ms N] [--hedge-compare]\n"
         "       [--replicas R] [--models N] [--routing-out FILE] "
         "[--availability-min FRAC]\n"
         "       [--faults FILE] [--fault-kill FRAC] [--codec-flip RATE] "
         "[--fault-seed N]\n"
         "       [--heal-after FRAC] [--kill-shard K] [--kill-after FRAC] "
         "[--heal-shard-after FRAC]\n"
         "       [--stall-ms N] [--fleet-faulty N] [--seed N] [--json] "
         "[--metrics] [--out FILE]\n"
         "       [--trace FILE] [--bench-out FILE] [--bench-shards LIST] "
         "[--bench-replicas LIST]\n"
         "       [--isa scalar|avx2|neon]\n";
  std::exit(2);
}

[[noreturn]] void bad_arg(const char* argv0, const std::string& message) {
  std::cerr << "error: " << message << "\n";
  usage(argv0);
}

std::int64_t parse_int(const char* argv0, const std::string& flag,
                       const std::string& text, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t value = 0;
  std::size_t used = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty()) {
    bad_arg(argv0, flag + " expects an integer, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    bad_arg(argv0, flag + "=" + text + " outside [" + std::to_string(lo) +
                       ", " + std::to_string(hi) + "]");
  }
  return value;
}

double parse_double(const char* argv0, const std::string& flag,
                    const std::string& text, double lo, double hi) {
  double value = 0;
  std::size_t used = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !std::isfinite(value)) {
    bad_arg(argv0, flag + " expects a number, got '" + text + "'");
  }
  if (value < lo || value > hi) {
    std::ostringstream os;
    os << flag << "=" << text << " outside [" << lo << ", " << hi << "]";
    bad_arg(argv0, os.str());
  }
  return value;
}

std::vector<int> parse_shard_list(const char* argv0, const std::string& flag,
                                  const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(
        static_cast<int>(parse_int(argv0, flag, item, 1, 64)));
  }
  if (out.empty()) bad_arg(argv0, flag + " expects a non-empty list");
  return out;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    bool have_inline = false;
    std::string inline_value;
    if (flag.rfind("--", 0) == 0) {
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        have_inline = true;
        inline_value = flag.substr(eq + 1);
        flag = flag.substr(0, eq);
      }
    }
    bool took_value = false;
    auto value = [&]() -> std::string {
      took_value = true;
      if (have_inline) return inline_value;
      if (i + 1 >= argc) bad_arg(argv[0], flag + " expects a value");
      return argv[++i];
    };
    if (flag == "--network") {
      args.network = value();
    } else if (flag == "--requests") {
      args.requests =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1 << 20));
    } else if (flag == "--rate") {
      args.rate = parse_double(argv[0], flag, value(), 1e-3, 1e6);
    } else if (flag == "--shards") {
      args.shards =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 64));
    } else if (flag == "--workers") {
      args.workers =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 256));
    } else if (flag == "--queue-cap") {
      args.queue_cap =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1 << 20));
    } else if (flag == "--batch-max") {
      args.batch_max =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 64));
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = parse_int(argv[0], flag, value(), 0, 1 << 30);
    } else if (flag == "--priority-levels") {
      args.priority_levels =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 100));
    } else if (flag == "--tenants") {
      args.tenants =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1000));
    } else if (flag == "--tenant-rate") {
      args.tenant_rate = parse_double(argv[0], flag, value(), 0, 1e9);
    } else if (flag == "--tenant-burst") {
      args.tenant_burst = parse_double(argv[0], flag, value(), 1, 1e9);
    } else if (flag == "--retries") {
      args.retries =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 100));
    } else if (flag == "--breaker-failures") {
      args.breaker_failures =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 1000));
    } else if (flag == "--breaker-cooldown-ms") {
      args.breaker_cooldown_ms = parse_int(argv[0], flag, value(), 1, 1 << 30);
    } else if (flag == "--slo-ms") {
      args.slo_ms = parse_int(argv[0], flag, value(), 0, 1 << 30);
    } else if (flag == "--no-hedge") {
      args.no_hedge = true;
    } else if (flag == "--hedge-ms") {
      args.hedge_ms = parse_int(argv[0], flag, value(), 1, 60'000);
    } else if (flag == "--no-steal") {
      args.no_steal = true;
    } else if (flag == "--canary-period-ms") {
      args.canary_period_ms = parse_int(argv[0], flag, value(), 1, 60'000);
    } else if (flag == "--hedge-compare") {
      args.hedge_compare = true;
    } else if (flag == "--replicas") {
      args.replicas =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 64));
    } else if (flag == "--models") {
      args.models =
          static_cast<int>(parse_int(argv[0], flag, value(), 1, 64));
    } else if (flag == "--routing-out") {
      args.routing_out = value();
    } else if (flag == "--availability-min") {
      args.availability_min = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--faults") {
      args.faults_file = value();
    } else if (flag == "--fault-kill") {
      args.fault_kill = parse_double(argv[0], flag, value(), 0.0, 0.95);
    } else if (flag == "--codec-flip") {
      args.codec_flip = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--fault-seed") {
      args.fault_seed = static_cast<std::uint64_t>(parse_int(
          argv[0], flag, value(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (flag == "--heal-after") {
      args.heal_after = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--kill-shard") {
      args.kill_shard =
          static_cast<int>(parse_int(argv[0], flag, value(), 0, 63));
    } else if (flag == "--kill-after") {
      args.kill_after = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--heal-shard-after") {
      args.heal_shard_after = parse_double(argv[0], flag, value(), 0.0, 1.0);
    } else if (flag == "--stall-ms") {
      args.stall_ms = parse_int(argv[0], flag, value(), 1, 60'000);
    } else if (flag == "--fleet-faulty") {
      args.fleet_faulty =
          static_cast<int>(parse_int(argv[0], flag, value(), 0, 64));
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(parse_int(
          argv[0], flag, value(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--metrics") {
      args.metrics = true;
    } else if (flag == "--out") {
      args.out_file = value();
    } else if (flag == "--trace") {
      args.trace_file = value();
    } else if (flag == "--bench-out") {
      args.bench_out = value();
    } else if (flag == "--bench-shards") {
      args.bench_shards = parse_shard_list(argv[0], flag, value());
    } else if (flag == "--bench-replicas") {
      args.bench_replicas = parse_shard_list(argv[0], flag, value());
    } else if (flag == "--isa") {
      // Kernel/codec dispatch override, same values as MOCHA_KERNEL_ISA.
      // Parse errors are a CLI problem (exit 2); an unsupported-but-valid
      // ISA is a host/build problem and stays the hard MOCHA_CHECK.
      const std::string text = value();
      mocha::util::KernelIsa isa;
      if (!mocha::util::parse_isa(text, &isa)) {
        bad_arg(argv[0], "--isa expects scalar|avx2|neon, got '" + text + "'");
      }
      mocha::util::force_isa(isa);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
    } else {
      bad_arg(argv[0], "unknown flag: " + flag);
    }
    if (have_inline && !took_value) {
      bad_arg(argv[0], flag + " does not take a value");
    }
  }
  if (!args.faults_file.empty() && args.fault_kill > 0.0) {
    bad_arg(argv[0], "--faults and --fault-kill are mutually exclusive");
  }
  if (args.kill_shard >= args.shards) {
    bad_arg(argv[0], "--kill-shard=" + std::to_string(args.kill_shard) +
                         " out of range for --shards=" +
                         std::to_string(args.shards));
  }
  if (args.fleet_faulty > args.shards) {
    bad_arg(argv[0], "--fleet-faulty=" + std::to_string(args.fleet_faulty) +
                         " exceeds --shards=" + std::to_string(args.shards));
  }
  if (args.fleet_faulty > 0 && args.kill_shard >= 0) {
    bad_arg(argv[0], "--fleet-faulty and --kill-shard are mutually exclusive");
  }
  if (args.heal_shard_after > 0.0 && args.kill_shard < 0) {
    bad_arg(argv[0], "--heal-shard-after requires --kill-shard");
  }
  if (args.heal_shard_after > 0.0 &&
      args.heal_shard_after <= args.kill_after) {
    bad_arg(argv[0], "--heal-shard-after must be > --kill-after");
  }
  if (args.hedge_compare && args.shards < 2) {
    bad_arg(argv[0], "--hedge-compare needs --shards >= 2");
  }
  if (args.hedge_compare && args.no_hedge) {
    bad_arg(argv[0], "--hedge-compare and --no-hedge are contradictory");
  }
  if (args.replicas > args.shards && args.bench_out.empty()) {
    bad_arg(argv[0], "--replicas=" + std::to_string(args.replicas) +
                         " exceeds --shards=" + std::to_string(args.shards));
  }
  if (!args.bench_replicas.empty() && args.bench_out.empty()) {
    bad_arg(argv[0], "--bench-replicas requires --bench-out");
  }
  return args;
}

struct RunResult {
  mocha::serve::RouterStats stats;
  mocha::obs::HistogramData latency_us;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  double wall_s = 0;
  double throughput_rps = 0;
  /// Effective replica-set size and completed/submitted for the run.
  int replicas = 0;
  double availability = 0;
  std::int64_t exec_attempts = 0;
  std::int64_t codec_retries = 0;
  std::int64_t breaker_trips = 0;
  std::int64_t breaker_recoveries = 0;
  std::int64_t quarantines = 0;
  bool interrupted = false;
  bool conserved = false;
};

/// One fault scenario from the legacy fleet-wide flags (--faults /
/// --fault-kill / --codec-flip), or an empty model when none are set.
mocha::fault::FaultModel scenario_from_flags(
    const Args& args, const mocha::fabric::FabricConfig& config) {
  using namespace mocha;
  fault::FaultModel faults;
  if (!args.faults_file.empty()) {
    std::ifstream in(args.faults_file);
    if (!in) {
      std::cerr << "error: cannot read fault spec " << args.faults_file
                << "\n";
      std::exit(2);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      faults = fault::FaultModel::from_json(buffer.str());
    } catch (const CheckFailure& e) {
      std::cerr << "error: bad fault spec " << args.faults_file << ": "
                << e.what() << "\n";
      std::exit(2);
    }
  } else if (args.fault_kill > 0.0) {
    faults = fault::FaultModel::random_scenario(config, args.fault_kill,
                                                args.fault_seed);
  }
  if (args.codec_flip > 0.0) faults.codec_bit_flip_rate = args.codec_flip;
  return faults;
}

/// Replays the trace once against a fresh fleet. Deterministic from
/// args.seed: two calls with the same args and `shards` submit identical
/// requests at identically drawn arrival gaps (the basis of
/// --hedge-compare).
RunResult run_trace(const Args& args, const mocha::nn::Network& net,
                    const mocha::fabric::FabricConfig& config, int shards,
                    bool hedge) {
  using namespace mocha;

  serve::RouterOptions options;
  options.shards = shards;
  options.engine.workers = args.workers;
  options.engine.queue_capacity = static_cast<std::size_t>(args.queue_cap);
  options.engine.default_deadline_ms =
      static_cast<std::uint64_t>(args.deadline_ms);
  options.engine.max_batch = args.batch_max;
  options.engine.retry.max_attempts = args.retries;
  options.engine.breaker.failure_threshold = args.breaker_failures;
  options.engine.breaker.cooldown_ms =
      static_cast<std::uint64_t>(args.breaker_cooldown_ms);
  options.engine.breaker.latency_slo_ms =
      static_cast<std::uint64_t>(args.slo_ms);
  options.engine.tenant_rate_per_sec = args.tenant_rate;
  options.engine.tenant_burst = args.tenant_burst;
  options.hedge = hedge;
  if (args.hedge_ms > 0) {
    // Fixed hedge delay: pin the adaptive clamp to one value.
    options.hedge_floor_ms = static_cast<std::uint64_t>(args.hedge_ms);
    options.hedge_cap_ms = static_cast<std::uint64_t>(args.hedge_ms);
  }
  options.steal = !args.no_steal;
  options.canary_period_ms = static_cast<std::uint64_t>(args.canary_period_ms);
  if (args.replicas > 0) {
    // Bench sweeps clamp rather than reject: a 2-shard point serves R=2
    // even when the sweep asks for R=3.
    options.default_replicas = std::min(args.replicas, shards);
  }
  options.routing_out = args.routing_out;

  serve::ShardRouter router(options);
  util::Rng rng(args.seed);
  // Multi-model mix: the same network registered under `models` names, each
  // with its own weights and replica set; requests cycle across them.
  std::vector<std::string> model_names;
  for (int m = 0; m < args.models; ++m) {
    model_names.push_back(args.models == 1
                              ? args.network
                              : args.network + "-" + std::to_string(m));
    router.register_model(model_names.back(), net,
                          nn::random_weights(net, 0.2, rng), config);
  }

  // Fault assignment.
  const fault::FaultModel flag_faults = scenario_from_flags(args, config);
  bool fleet_wide = false;
  if (args.fleet_faulty > 0) {
    // Decorrelated per-shard scenarios: the first `fleet_faulty` shards get
    // independent random kills, the rest stay healthy.
    auto scenarios = fault::fleet_scenarios(
        config, shards, std::min(args.fleet_faulty, shards),
        args.fault_kill > 0.0 ? args.fault_kill : 0.25, args.fault_seed);
    for (int i = 0; i < shards; ++i) {
      if (args.codec_flip > 0.0 && scenarios[static_cast<std::size_t>(i)].any()) {
        scenarios[static_cast<std::size_t>(i)].codec_bit_flip_rate =
            args.codec_flip;
      }
      if (scenarios[static_cast<std::size_t>(i)].any()) {
        router.set_shard_fault(i, scenarios[static_cast<std::size_t>(i)]);
        std::cerr << "shard " << i << " fault: "
                  << scenarios[static_cast<std::size_t>(i)].summary(config)
                  << "\n";
      }
    }
  } else if (args.kill_shard < 0 && flag_faults.any()) {
    // Pre-fleet behaviour: the scenario applies to every shard at once.
    fleet_wide = true;
    for (int i = 0; i < shards; ++i) router.set_shard_fault(i, flag_faults);
    std::cerr << "fleet-wide fault scenario: " << flag_faults.summary(config)
              << "\n";
  }

  // Kill/heal schedule for one shard-level fault domain.
  fault::FaultModel shard_fault = flag_faults;
  if (args.stall_ms > 0) shard_fault.exec_stall_ms = args.stall_ms;
  if (args.kill_shard >= 0 && !shard_fault.any()) {
    shard_fault =
        fault::FaultModel::random_scenario(config, 0.5, args.fault_seed);
  }
  const int kill_at =
      args.kill_shard >= 0
          ? static_cast<int>(args.kill_after * args.requests)
          : -1;
  const int heal_shard_at =
      args.heal_shard_after > 0.0
          ? static_cast<int>(args.heal_shard_after * args.requests)
          : -1;
  const int heal_at =
      fleet_wide && args.heal_after > 0.0
          ? static_cast<int>(args.heal_after * args.requests)
          : -1;
  bool killed = false;
  bool shard_healed = false;
  bool healed = false;

  // A handful of pre-generated inputs cycled across requests: arrival
  // timing, not input diversity, is what this tool exercises.
  std::vector<nn::ValueTensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(
        random_tensor(net.layers.front().input_shape(), 0.05, rng));
  }

  RunResult out;
  std::vector<serve::TicketPtr> tickets;
  tickets.reserve(static_cast<std::size_t>(args.requests));
  util::Rng arrivals(args.seed ^ 0x9e3779b97f4a7c15ull);
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < args.requests; ++i) {
    if (serve::SignalDrain::requested()) {
      out.interrupted = true;
      break;
    }
    if (i == kill_at && !killed) {
      router.set_shard_fault(args.kill_shard, shard_fault);
      killed = true;
      std::cerr << "shard " << args.kill_shard << " killed after " << i
                << " requests: " << shard_fault.summary(config) << "\n";
    }
    if (i == heal_shard_at && killed && !shard_healed) {
      router.clear_shard_fault(args.kill_shard);
      shard_healed = true;
      std::cerr << "shard " << args.kill_shard << " healed after " << i
                << " requests\n";
    }
    if (i == heal_at && !healed) {
      for (int s = 0; s < shards; ++s) router.clear_shard_fault(s);
      healed = true;
      std::cerr << "fleet-wide fault scenario healed after " << i
                << " requests\n";
    }
    serve::Request request;
    request.model = model_names[static_cast<std::size_t>(i) %
                                model_names.size()];
    request.tenant = "tenant-" + std::to_string(i % args.tenants);
    request.priority =
        static_cast<int>(arrivals.uniform_int(0, args.priority_levels - 1));
    request.input = inputs[static_cast<std::size_t>(i) % inputs.size()];
    tickets.push_back(router.submit(std::move(request)));

    // Open-loop Poisson arrivals: exponential inter-arrival times.
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        util::poisson_gap_ns(arrivals, args.rate)));
  }

  router.shutdown(/*drain=*/true);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();

  // Every client ticket is terminal after shutdown; tally the outcomes into
  // the same log2-bucketed histogram the metrics registry uses.
  for (const serve::TicketPtr& ticket : tickets) {
    const serve::Response& resp = ticket->wait();
    out.exec_attempts += resp.attempts;
    out.codec_retries += resp.codec_retries;
    if (resp.outcome == serve::Outcome::Completed) {
      out.latency_us.add(static_cast<std::int64_t>(resp.latency_ns / 1000));
    }
  }

  out.stats = router.stats();
  const auto pct = [&](double p) {
    return static_cast<std::uint64_t>(
        std::llround(out.latency_us.percentile(p)));
  };
  out.p50 = pct(50);
  out.p90 = pct(90);
  out.p99 = pct(99);
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(out.stats.completed) / out.wall_s
                     : 0.0;
  for (int i = 0; i < shards; ++i) {
    for (const std::string& name : model_names) {
      out.breaker_trips += router.shard_engine(i).breaker_trips(name);
      out.breaker_recoveries += router.shard_engine(i).breaker_recoveries(name);
    }
  }
  for (const serve::ShardSnapshot& snap : out.stats.shards) {
    out.quarantines += snap.quarantines;
  }
  out.conserved = out.stats.submitted == out.stats.completed +
                                             out.stats.shed +
                                             out.stats.failed &&
                  out.stats.in_flight == 0;
  out.replicas = std::min(options.default_replicas, shards);
  out.availability =
      out.stats.submitted > 0
          ? static_cast<double>(out.stats.completed) /
                static_cast<double>(out.stats.submitted)
          : 1.0;
  return out;
}

std::string fleet_json(const Args& args, int shards, const RunResult& r,
                       bool slo_ok) {
  using namespace mocha;
  std::ostringstream json;
  json << "{\n  \"schema\": \"mocha.serve.v3\",\n"
       << "  \"network\": \"" << args.network << "\",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"replicas\": " << r.replicas << ",\n"
       << "  \"models\": " << args.models << ",\n"
       << "  \"requests\": " << args.requests << ",\n"
       << "  \"rate_rps\": " << args.rate << ",\n"
       << "  \"interrupted\": " << (r.interrupted ? "true" : "false")
       << ",\n"
       << "  \"submitted\": " << r.stats.submitted << ",\n"
       << "  \"completed\": " << r.stats.completed << ",\n"
       << "  \"shed\": " << r.stats.shed << ",\n"
       << "  \"failed\": " << r.stats.failed << ",\n"
       << "  \"outcomes\": {";
  bool first = true;
  for (int i = 1; i < 8; ++i) {
    const auto outcome = static_cast<serve::Outcome>(i);
    if (!first) json << ", ";
    json << "\"" << serve::outcome_name(outcome)
         << "\": " << r.stats.outcome_count(outcome);
    first = false;
  }
  json << "},\n"
       << "  \"hedging\": {\"issued\": " << r.stats.hedges_issued
       << ", \"wins\": " << r.stats.hedge_wins
       << ", \"failovers\": " << r.stats.failovers
       << ", \"delay_us\": " << r.stats.hedge_delay_ns / 1000 << "},\n"
       << "  \"steals\": " << r.stats.steals << ",\n"
       << "  \"canaries\": " << r.stats.canaries << ",\n"
       << "  \"probes\": " << r.stats.probes << ",\n"
       << "  \"retries\": " << r.exec_attempts << ",\n"
       << "  \"codec_retries\": " << r.codec_retries << ",\n"
       << "  \"breaker_trips\": " << r.breaker_trips << ",\n"
       << "  \"breaker_recoveries\": " << r.breaker_recoveries << ",\n"
       << "  \"latency_us\": {\"p50\": " << r.p50 << ", \"p90\": " << r.p90
       << ", \"p99\": " << r.p99 << "},\n"
       << "  \"throughput_rps\": " << r.throughput_rps << ",\n"
       << "  \"slo_ms\": " << args.slo_ms << ",\n"
       << "  \"availability\": " << r.availability << ",\n"
       << "  \"availability_min\": " << args.availability_min << ",\n"
       << "  \"routing_epoch\": " << r.stats.routing_epoch << ",\n"
       << "  \"conserved\": " << (r.conserved ? "true" : "false") << ",\n"
       << "  \"slo_ok\": " << (slo_ok ? "true" : "false") << ",\n"
       << "  \"shard_detail\": [";
  for (std::size_t i = 0; i < r.stats.shards.size(); ++i) {
    const serve::ShardSnapshot& s = r.stats.shards[i];
    if (i > 0) json << ",";
    json << "\n    {\"shard\": " << s.shard << ", \"state\": \""
         << serve::health_state_name(s.state)
         << "\", \"submitted\": " << s.stats.submitted
         << ", \"completed\": " << s.stats.completed
         << ", \"shed\": " << s.stats.shed
         << ", \"failed\": " << s.stats.failed
         << ", \"stolen_in\": " << s.stats.stolen_in
         << ", \"stolen_out\": " << s.stats.stolen_out
         << ", \"batches\": " << s.stats.batches
         << ", \"batch_coalesced\": " << s.stats.batch_coalesced
         << ", \"quarantines\": " << s.quarantines
         << ", \"probes_started\": " << s.probes_started
         << ", \"probes_abandoned\": " << s.probes_abandoned << "}";
  }
  json << "\n  ]\n}";
  return json.str();
}

void print_report(const Args& args, int shards, const RunResult& r,
                  bool slo_ok) {
  using namespace mocha;
  std::cout << "serve fleet report: " << args.network << " x" << args.models
            << ", " << shards << " shard" << (shards == 1 ? "" : "s")
            << ", R=" << r.replicas << ", " << r.stats.submitted
            << " submitted"
            << (r.interrupted ? " (interrupted, drained)" : "") << "\n"
            << "  completed " << r.stats.completed << "  shed "
            << r.stats.shed << "  failed " << r.stats.failed
            << "\n  outcomes:";
  for (int i = 1; i < 8; ++i) {
    const auto outcome = static_cast<serve::Outcome>(i);
    if (r.stats.outcome_count(outcome) == 0) continue;
    std::cout << " " << serve::outcome_name(outcome) << "="
              << r.stats.outcome_count(outcome);
  }
  std::cout << "\n  hedging: issued " << r.stats.hedges_issued << ", wins "
            << r.stats.hedge_wins << ", failovers " << r.stats.failovers
            << ", delay " << r.stats.hedge_delay_ns / 1000 << " us\n"
            << "  steals " << r.stats.steals << ", canaries "
            << r.stats.canaries << ", probes " << r.stats.probes
            << ", breaker trips " << r.breaker_trips << " (recoveries "
            << r.breaker_recoveries << ")\n";
  for (const serve::ShardSnapshot& s : r.stats.shards) {
    std::cout << "  shard " << s.shard << ": "
              << serve::health_state_name(s.state) << ", submitted "
              << s.stats.submitted << ", completed " << s.stats.completed
              << ", shed " << s.stats.shed << ", failed " << s.stats.failed
              << ", stolen " << s.stats.stolen_in << "/"
              << s.stats.stolen_out << " in/out, batches " << s.stats.batches
              << ", quarantines " << s.quarantines << "\n";
  }
  std::cout << "  latency (completed): p50 " << r.p50 << " us, p90 "
            << r.p90 << " us, p99 " << r.p99 << " us; throughput "
            << r.throughput_rps << " rps\n"
            << "  availability " << r.availability << ", routing epoch "
            << r.stats.routing_epoch << "\n"
            << "  conservation: " << (r.conserved ? "ok" : "VIOLATED")
            << "\n";
  if (args.slo_ms > 0) {
    std::cout << "  SLO p99 <= " << args.slo_ms
              << " ms: " << (slo_ok ? "met" : "MISSED") << "\n";
  }
  if (args.availability_min >= 0) {
    std::cout << "  availability >= " << args.availability_min << ": "
              << (r.availability >= args.availability_min ? "met" : "MISSED")
              << "\n";
  }
}

int run_bench(const Args& args, const mocha::nn::Network& net,
              const mocha::fabric::FabricConfig& config) {
  using namespace mocha;
  struct Point {
    int shards;
    RunResult result;
    bool slo_ok;
  };
  std::vector<Point> points;
  bool all_conserved = true;
  bool all_slo = true;
  for (const int shards : args.bench_shards) {
    Args per = args;
    per.routing_out.clear();  // sub-runs would clobber each other's export
    if (per.kill_shard >= shards) per.kill_shard = shards - 1;
    std::cerr << "bench: " << shards << " shard(s)...\n";
    RunResult r = run_trace(per, net, config, shards, !args.no_hedge);
    const bool slo_ok =
        args.slo_ms == 0 ||
        r.p99 <= static_cast<std::uint64_t>(args.slo_ms) * 1000;
    all_conserved = all_conserved && r.conserved;
    all_slo = all_slo && slo_ok;
    std::cout << "bench point: shards=" << shards << " p99=" << r.p99
              << "us throughput=" << r.throughput_rps
              << "rps conserved=" << (r.conserved ? "yes" : "NO") << "\n";
    const bool interrupted = r.interrupted;
    points.push_back({shards, std::move(r), slo_ok});
    if (interrupted || serve::SignalDrain::requested()) break;
  }

  // Availability-vs-R trajectory: the same seed and kill/heal schedule at a
  // fixed fleet size, sweeping the replica-set size — how much redundancy,
  // not luck, closes the availability hole a killed shard opens.
  struct AvailPoint {
    int replicas;
    RunResult result;
  };
  std::vector<AvailPoint> avail_points;
  if (!args.bench_replicas.empty() && !serve::SignalDrain::requested()) {
    const int shards = args.bench_shards.back();
    for (const int replicas : args.bench_replicas) {
      Args per = args;
      per.routing_out.clear();
      per.replicas = std::min(replicas, shards);
      if (per.kill_shard >= shards) per.kill_shard = shards - 1;
      std::cerr << "bench: availability at R=" << per.replicas << ", "
                << shards << " shard(s)...\n";
      RunResult r = run_trace(per, net, config, shards, !args.no_hedge);
      all_conserved = all_conserved && r.conserved;
      std::cout << "bench point: replicas=" << r.replicas
                << " availability=" << r.availability
                << " failed=" << r.stats.failed
                << " conserved=" << (r.conserved ? "yes" : "NO") << "\n";
      const bool interrupted = r.interrupted;
      avail_points.push_back({per.replicas, std::move(r)});
      if (interrupted || serve::SignalDrain::requested()) break;
    }
  }

  std::ostringstream json;
  json << "{\n  \"schema\": \"mocha.bench.serve.v1\",\n"
       << "  \"network\": \"" << args.network << "\",\n"
       << "  \"requests\": " << args.requests << ",\n"
       << "  \"rate_rps\": " << args.rate << ",\n"
       << "  \"slo_ms\": " << args.slo_ms << ",\n"
       << "  \"hedge\": " << (args.no_hedge ? "false" : "true") << ",\n"
       << "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json << ",";
    json << "\n    {\"shards\": " << p.shards << ", \"p50_us\": "
         << p.result.p50 << ", \"p99_us\": " << p.result.p99
         << ", \"throughput_rps\": " << p.result.throughput_rps
         << ", \"completed\": " << p.result.stats.completed
         << ", \"shed\": " << p.result.stats.shed
         << ", \"failed\": " << p.result.stats.failed
         << ", \"hedge_wins\": " << p.result.stats.hedge_wins
         << ", \"steals\": " << p.result.stats.steals
         << ", \"quarantines\": " << p.result.quarantines
         << ", \"conserved\": " << (p.result.conserved ? "true" : "false")
         << ", \"slo_ok\": " << (p.slo_ok ? "true" : "false") << "}";
  }
  json << "\n  ],\n  \"availability_vs_replicas\": [";
  for (std::size_t i = 0; i < avail_points.size(); ++i) {
    const AvailPoint& p = avail_points[i];
    if (i > 0) json << ",";
    json << "\n    {\"replicas\": " << p.replicas
         << ", \"shards\": " << args.bench_shards.back()
         << ", \"availability\": " << p.result.availability
         << ", \"completed\": " << p.result.stats.completed
         << ", \"failed\": " << p.result.stats.failed
         << ", \"failovers\": " << p.result.stats.failovers
         << ", \"routing_epoch\": " << p.result.stats.routing_epoch
         << ", \"conserved\": " << (p.result.conserved ? "true" : "false")
         << "}";
  }
  json << "\n  ],\n  \"conserved\": " << (all_conserved ? "true" : "false")
       << ",\n  \"slo_ok\": " << (all_slo ? "true" : "false") << "\n}";
  if (!obs::write_file_atomic(args.bench_out, json.str() + "\n")) {
    std::cerr << "error: cannot write " << args.bench_out << "\n";
    return 3;
  }
  std::cout << "wrote " << args.bench_out << " (" << points.size()
            << " shard points, " << avail_points.size()
            << " replication points)\n";
  if (!all_conserved) return 4;
  return all_slo ? 0 : 1;
}

int run(const Args& args) {
  using namespace mocha;

  nn::Network net;
  if (args.network == "alexnet") {
    net = nn::make_alexnet();
  } else if (args.network == "vgg16") {
    net = nn::make_vgg16();
  } else if (args.network == "lenet5") {
    net = nn::make_lenet5();
  } else if (args.network == "nin") {
    net = nn::make_nin();
  } else if (args.network == "mobilenet") {
    net = nn::make_mobilenet_v1();
  } else {
    std::cerr << "unknown network: " << args.network << "\n";
    return 2;
  }

  if (args.metrics) obs::MetricsRegistry::global().set_enabled(true);
  std::unique_ptr<obs::TraceSession> trace;
  if (!args.trace_file.empty()) {
    trace = std::make_unique<obs::TraceSession>(args.trace_file);
  }

  const fabric::FabricConfig config = fabric::mocha_default_config();

  // Ctrl-C / SIGTERM: stop admitting, drain what's queued, still report.
  serve::SignalDrain drain;

  if (!args.bench_out.empty()) {
    const int rc = run_bench(args, net, config);
    if (trace) trace.reset();
    return rc;
  }

  RunResult r = run_trace(args, net, config, args.shards, !args.no_hedge);
  const bool slo_ok =
      args.slo_ms == 0 ||
      r.p99 <= static_cast<std::uint64_t>(args.slo_ms) * 1000;

  // --hedge-compare: replay the identical trace with hedging disabled and
  // demand that hedging improved the measured p99.
  bool compare_ok = true;
  std::uint64_t unhedged_p99 = 0;
  if (args.hedge_compare) {
    std::cerr << "hedge-compare: replaying with hedging disabled...\n";
    Args base_args = args;
    base_args.routing_out.clear();  // keep the hedged run's export
    RunResult base = run_trace(base_args, net, config, args.shards, false);
    unhedged_p99 = base.p99;
    compare_ok = r.conserved && base.conserved && r.p99 < base.p99;
    std::cout << "hedge-compare: hedged p99 " << r.p99 << " us vs unhedged "
              << base.p99 << " us -> "
              << (compare_ok ? "improved" : "NO IMPROVEMENT") << "\n";
    if (!base.conserved) {
      std::cerr << "hedge-compare: unhedged run violated conservation\n";
      return 4;
    }
  }

  std::string json = fleet_json(args, args.shards, r, slo_ok);
  if (args.hedge_compare) {
    // Splice the comparison into the report object.
    const std::string tail = "\n}";
    json.replace(json.rfind(tail), tail.size(),
                 ",\n  \"hedge_compare\": {\"hedged_p99_us\": " +
                     std::to_string(r.p99) + ", \"unhedged_p99_us\": " +
                     std::to_string(unhedged_p99) + ", \"improved\": " +
                     (compare_ok ? "true" : "false") + "}\n}");
  }

  if (!args.out_file.empty()) {
    if (!obs::write_file_atomic(args.out_file, json + "\n")) {
      std::cerr << "error: cannot write " << args.out_file << "\n";
      return 3;
    }
  }
  if (trace) trace.reset();  // flush before reporting

  if (args.json) {
    std::cout << json << "\n";
  } else {
    print_report(args, args.shards, r, slo_ok);
  }
  if (args.metrics) {
    std::cout << "\nmetrics: "
              << obs::MetricsRegistry::global().snapshot().to_json() << "\n";
  }

  if (!r.conserved) return 4;
  if (args.availability_min >= 0 && r.availability < args.availability_min) {
    std::cerr << "availability gate: " << r.availability << " < "
              << args.availability_min << "\n";
    return 7;
  }
  if (!compare_ok) return 6;
  return slo_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    return run(args);
  } catch (const mocha::CheckFailure& e) {
    std::cerr << "mocha_serve: " << e.what() << "\n";
    return 3;
  }
}
