# ctest driver for the replication availability gate (docs/SERVING.md).
#
# Proves that replication — not luck, stealing, or the circuit breaker —
# closes the availability hole left by a mid-run shard kill. Shard 1 stalls
# 2 s per execution against a 1 s deadline, so every request its workers
# pick up during the kill window is unrescuable on that shard:
#
#   * R=2: hedges fire 20 ms in on a *different* replica and finish inside
#     the deadline. completed/submitted must stay >= 0.999 (exit 0).
#   * R=1: the replica set is just the stalled shard; its in-flight
#     requests blow the deadline and the gate must trip (exit 7).
#
# Both runs share one seed and kill/heal schedule, so the only variable is
# the replication factor. Invoked by the `serve_availability_gate` test as
#   cmake -DSERVE=<mocha_serve> -DOUT_DIR=<dir> [-DISA=scalar]
#         -P availability_gate.cmake

set(common
    --seed 42 --shards 3 --requests 200 --rate 400 --queue-cap 64
    --deadline-ms 1000 --stall-ms 2000 --hedge-ms 20
    --kill-shard 1 --kill-after 0.25 --heal-shard-after 0.8
    --availability-min 0.999)
if(ISA)
  list(APPEND common --isa ${ISA})
endif()

# Runs the gate scenario at replication factor `replicas` and asserts the
# exact exit code — a crash, an SLO miss (1), or a conservation violation
# (4) all fail the test, not just the wrong availability verdict.
function(expect_gate replicas want)
  execute_process(COMMAND ${SERVE} --replicas ${replicas} ${common}
                          --routing-out ${OUT_DIR}/gate_routing_r${replicas}.json
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL ${want})
    message(FATAL_ERROR "R=${replicas}: expected exit ${want}, got '${code}'\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

expect_gate(2 0)   # replicated run must meet 0.999
expect_gate(1 7)   # same run without replication must demonstrably violate

# --routing-out must have landed a snapshot (the stall kill degrades the
# shard without quarantining it, so this is the epoch-0 construction
# export; parse-level checks live in the routing unit tests).
file(READ ${OUT_DIR}/gate_routing_r2.json snapshot)
if(NOT snapshot MATCHES "mocha\\.routing\\.v1")
  message(FATAL_ERROR "R=2 routing snapshot missing schema tag:\n${snapshot}")
endif()

message(STATUS "availability gate: R=2 meets 0.999, R=1 trips exit 7")
